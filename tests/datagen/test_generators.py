"""Tests for the three paper-dataset generators."""

import pytest

from repro.core import DiscoveryConfig, discover_inds
from repro.datagen import (
    SCALES,
    generate_biosql,
    generate_openmms,
    generate_scop,
    random_database,
)
from repro.datagen.sizes import get_scale
from repro.errors import BenchmarkError


class TestScales:
    def test_known_scales(self):
        assert set(SCALES) == {"tiny", "small", "medium", "paper-shape"}

    def test_get_scale_by_name(self):
        assert get_scale("tiny").name == "tiny"

    def test_get_scale_passthrough(self):
        scale = SCALES["small"]
        assert get_scale(scale) is scale

    def test_unknown_scale(self):
        with pytest.raises(BenchmarkError, match="unknown scale"):
            get_scale("galactic")


class TestBioSQL:
    @pytest.fixture(scope="class")
    def dataset(self):
        return generate_biosql("tiny")

    def test_paper_shape(self, dataset):
        summary = dataset.db.summary()
        assert summary["tables"] == 16
        total_attrs = sum(
            len(t.schema.columns) for t in dataset.db.tables()
        )
        assert total_attrs == 85

    def test_exactly_one_empty_table_with_two_fks(self, dataset):
        empty = [t for t in dataset.db.tables() if t.is_empty]
        assert [t.name for t in empty] == ["sg_seqfeature_qualifier_value"]
        assert len(dataset.empty_table_foreign_keys) == 2

    def test_fk_data_is_consistent(self, dataset):
        """Every declared FK on a non-empty table actually holds in the data."""
        from repro.storage.codec import render_value

        for fk in dataset.recoverable_foreign_keys:
            dep = {
                render_value(v)
                for v in dataset.db.attribute_values(fk.dependent)
            }
            ref = {
                render_value(v)
                for v in dataset.db.attribute_values(fk.referenced)
            }
            assert dep <= ref, f"FK violated in generated data: {fk}"

    def test_deterministic(self):
        a = generate_biosql("tiny", seed=5)
        b = generate_biosql("tiny", seed=5)
        row_a = a.db.table("sg_bioentry").row(3)
        row_b = b.db.table("sg_bioentry").row(3)
        assert row_a == row_b

    def test_seed_changes_data(self):
        a = generate_biosql("tiny", seed=5)
        b = generate_biosql("tiny", seed=6)
        assert (
            a.db.table("sg_bioentry").row(3)["accession"]
            != b.db.table("sg_bioentry").row(3)["accession"]
        )

    def test_biosequence_is_one_to_one(self, dataset):
        assert (
            dataset.db.table("sg_biosequence").row_count
            == dataset.db.table("sg_bioentry").row_count
        )

    def test_no_unexpected_inds(self, dataset):
        result = discover_inds(dataset.db, DiscoveryConfig(strategy="reference"))
        found = {
            (i.dependent.qualified, i.referenced.qualified)
            for i in result.satisfied
        }
        fks = {
            (fk.dependent.qualified, fk.referenced.qualified)
            for fk in dataset.recoverable_foreign_keys
        }
        assert fks <= found, f"missing FK INDs: {fks - found}"
        assert found - fks == set(dataset.expected_extra_inds)


class TestScop:
    @pytest.fixture(scope="class")
    def dataset(self):
        return generate_scop("tiny")

    def test_paper_shape(self, dataset):
        summary = dataset.db.summary()
        assert summary["tables"] == 4
        assert sum(len(t.schema.columns) for t in dataset.db.tables()) == 22

    def test_every_sunid_described(self, dataset):
        des_sunids = dataset.db.attribute_distinct(
            dataset.db.table("scop_des").schema.attribute("sunid")
        )
        cla_sunids = dataset.db.attribute_distinct(
            dataset.db.table("scop_cla").schema.attribute("sunid")
        )
        assert cla_sunids <= des_sunids

    def test_hierarchy_parents_exist(self, dataset):
        hie = dataset.db.table("scop_hie")
        sunids = set(hie.distinct_values("sunid"))
        parents = set(hie.distinct_values("parent_sunid"))
        assert parents <= sunids

    def test_deterministic(self):
        assert (
            generate_scop("tiny", seed=2).db.table("scop_cla").row(0)
            == generate_scop("tiny", seed=2).db.table("scop_cla").row(0)
        )


class TestOpenMMS:
    @pytest.fixture(scope="class")
    def dataset(self):
        return generate_openmms("tiny")

    def test_surrogate_keys_start_at_one(self, dataset):
        for table in dataset.db.non_empty_tables():
            pk = table.schema.primary_key
            if pk is None:
                continue
            values = table.non_null_values(pk)
            if values and isinstance(values[0], int):
                assert min(values) == 1, f"{table.name}.{pk} must start at 1"

    def test_full_coverage_trio_same_rowcount(self, dataset):
        counts = {
            name: dataset.db.table(name).row_count
            for name in ("struct", "exptl", "struct_keywords")
        }
        assert len(set(counts.values())) == 1

    def test_no_declared_fks(self, dataset):
        assert dataset.db.declared_foreign_keys() == []
        assert dataset.foreign_keys == []

    def test_soft_columns_have_one_dirty_value(self, dataset):
        for ref in dataset.expected_soft_accession_candidates:
            values = dataset.db.attribute_values(ref)
            assert values.count("?") == 1

    def test_entry_codes_shared_across_core_tables(self, dataset):
        struct = dataset.db.attribute_distinct(
            dataset.db.table("struct").schema.attribute("entry_id")
        )
        exptl = dataset.db.attribute_distinct(
            dataset.db.table("exptl").schema.attribute("entry_id")
        )
        assert struct == exptl

    def test_satellite_count_scales(self):
        tiny = generate_openmms("tiny").db.summary()["tables"]
        small = generate_openmms("small").db.summary()["tables"]
        assert small > tiny

    def test_deterministic(self):
        a = generate_openmms("tiny", seed=1).db.table("struct").row(5)
        b = generate_openmms("tiny", seed=1).db.table("struct").row(5)
        assert a == b


class TestRandomDatabase:
    def test_deterministic(self):
        a = random_database(7)
        b = random_database(7)
        assert a.table_names == b.table_names
        for name in a.table_names:
            assert list(a.table(name).rows()) == list(b.table(name).rows())

    def test_varies_with_seed(self):
        names = {tuple(random_database(s).table_names) for s in range(5)}
        sizes = {random_database(s).total_rows for s in range(5)}
        assert len(sizes) > 1 or len(names) > 1

    def test_within_bounds(self):
        db = random_database(3, max_tables=2, max_columns=3, max_rows=5)
        assert len(db.table_names) <= 2
        for table in db.tables():
            assert len(table.schema.columns) <= 3
            assert table.row_count <= 5

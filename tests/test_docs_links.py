"""Intra-repo link integrity of the markdown documentation.

Every relative link in ``docs/*.md`` and the repo-level markdown files must
resolve to a file that exists — a broken link in the architecture map is a
documentation bug, and CI runs this module as its docs job.  External links
(http/https/mailto) and pure in-page anchors are out of scope: checking them
needs the network or a markdown-to-anchor renderer, neither of which belongs
in a hermetic test.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]

#: ``[text](target)`` — good enough for the plain links these docs use
#: (no reference-style links, no angle-bracket autolinks in scope).
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

_EXTERNAL = ("http://", "https://", "mailto:")


def _markdown_files() -> list[Path]:
    files = sorted(REPO_ROOT.glob("*.md")) + sorted(
        REPO_ROOT.glob("docs/**/*.md")
    )
    assert files, "no markdown files found — wrong repo root?"
    return files


def _links(path: Path) -> list[str]:
    return _LINK.findall(path.read_text(encoding="utf-8"))


@pytest.mark.parametrize(
    "md_file", _markdown_files(), ids=lambda p: str(p.relative_to(REPO_ROOT))
)
def test_relative_links_resolve(md_file: Path):
    broken = []
    for target in _links(md_file):
        if target.startswith(_EXTERNAL) or target.startswith("#"):
            continue
        relative = target.split("#", 1)[0]  # drop any anchor suffix
        if not relative:
            continue
        resolved = (md_file.parent / relative).resolve()
        if not resolved.exists():
            broken.append(target)
    assert not broken, (
        f"{md_file.relative_to(REPO_ROOT)} has broken intra-repo links: "
        f"{broken}"
    )


def test_docs_index_mentions_every_docs_file():
    """docs/README.md is the index; a doc it does not link is undiscoverable."""
    index = REPO_ROOT / "docs" / "README.md"
    assert index.exists(), "docs/README.md index is missing"
    text = index.read_text(encoding="utf-8")
    for doc in sorted((REPO_ROOT / "docs").glob("*.md")):
        if doc.name == "README.md":
            continue
        assert doc.name in text, f"docs/README.md does not link {doc.name}"

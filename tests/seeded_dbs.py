"""Seeded database and spool builders shared across the test suite.

These used to be copy-pasted into their consuming test modules; every
suite that wants a deterministic messy database — agreement matrices,
pipeline fault injection, adaptive routing, overlap stress — imports them
from this one place (``from seeded_dbs import ...`` resolves because
pytest puts ``tests/`` on ``sys.path`` when it loads ``tests/conftest.py``;
a plain module rather than the conftest itself, because ``conftest`` is an
ambiguous module name once the benchmark suite's conftest is loaded too).
"""

from __future__ import annotations

import random

from repro.db import Column, Database, DataType, TableSchema
from repro.db.schema import AttributeRef
from repro.storage.sorted_sets import SpoolDirectory

# Small value pools force collisions across columns (satisfied INDs) while
# awkward strings exercise the codecs; integers collide with their rendered
# string forms (the paper's TO_CHAR semantics).
STRING_POOL = [
    "a", "b", "ab", "0", "1", "7", "42",
    "x\ny", "back\\slash", "nul\x00byte", "tab\tchar", "",
]


def build_random_db(seed: int) -> Database:
    """A deterministic random database of 1-3 tables with messy values.

    Every table gets an id-like first column (unique, drawn from overlapping
    integer ranges so inter-table INDs arise) plus random payload columns, so
    the unique-ref candidate generator always has work to do.
    """
    rng = random.Random(seed)
    db = Database(f"agree{seed}")
    for t in range(rng.randint(1, 3)):
        columns = [Column("id", DataType.INTEGER, unique=True)]
        columns += [
            Column(
                f"c{i}",
                rng.choice([DataType.INTEGER, DataType.VARCHAR]),
            )
            for i in range(rng.randint(1, 3))
        ]
        table = db.create_table(TableSchema(f"t{t}", columns))
        offset = rng.choice([0, 0, 3, 10])
        for row_index in range(rng.randint(1, 30)):
            row = {"id": offset + row_index}
            for col in columns[1:]:
                roll = rng.random()
                if roll < 0.15:
                    row[col.name] = None
                elif col.dtype is DataType.INTEGER:
                    # Overlaps the id ranges: integer payloads are often
                    # included in some table's id column, and vice versa.
                    row[col.name] = rng.randint(0, 12)
                else:
                    row[col.name] = rng.choice(STRING_POOL)
            table.insert(row)
    return db


def build_db(seed: int = 0) -> Database:
    """Two tables with overlapping integer ranges: INDs in both directions."""
    db = Database(f"pipeline{seed}")
    t0 = db.create_table(
        TableSchema(
            "t0",
            [
                Column("id", DataType.INTEGER, unique=True),
                Column("c0", DataType.INTEGER),
                Column("c1", DataType.VARCHAR),
            ],
        )
    )
    t1 = db.create_table(
        TableSchema(
            "t1",
            [
                Column("id", DataType.INTEGER, unique=True),
                Column("c0", DataType.INTEGER),
            ],
        )
    )
    for row in range(20):
        t0.insert({"id": row, "c0": (row * 7 + seed) % 12, "c1": f"v{row % 5}"})
    for row in range(12):
        t1.insert({"id": row + 3, "c0": row % 12})
    return db


def spool_with(tmp_path, sizes: dict[str, int]) -> SpoolDirectory:
    """A binary spool with one single-table attribute per entry of ``sizes``."""
    spool = SpoolDirectory.create(tmp_path / "spool", format="binary")
    for name, count in sizes.items():
        ref = AttributeRef("t", name)
        spool.add_values(ref, [f"{name}-{i:06d}" for i in range(count)])
    spool.save_index()
    return spool

"""Tests for the benchmark harness helpers."""

import pytest

from repro.bench.harness import RESULT_HEADERS, run_strategy
from repro.bench.workloads import Workloads, bench_scale


class TestWorkloads:
    def test_caching(self):
        workloads = Workloads("tiny")
        assert workloads.biosql() is workloads.biosql()

    def test_all_three_names(self):
        workloads = Workloads("tiny")
        assert set(workloads.all_three()) == {
            "UniProt(BioSQL)",
            "SCOP",
            "PDB(OpenMMS)",
        }

    def test_scale_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "medium")
        assert bench_scale() == "medium"
        assert Workloads().scale == "medium"

    def test_default_scale(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert bench_scale() == "small"


class TestRunStrategy:
    @pytest.fixture(scope="class")
    def dataset(self):
        return Workloads("tiny").scop()

    def test_outcome_row_matches_headers(self, dataset):
        outcome = run_strategy("SCOP", dataset.db, "merge-single-pass")
        assert len(outcome.row()) == len(RESULT_HEADERS)
        assert outcome.dataset == "SCOP"
        assert outcome.satisfied > 0

    def test_paper_default_pretests(self, dataset):
        # Default = cardinality only (the Sec. 2/3 setup).
        plain = run_strategy("SCOP", dataset.db, "merge-single-pass")
        pruned = run_strategy(
            "SCOP", dataset.db, "merge-single-pass", max_value_pretest=True
        )
        assert pruned.candidates <= plain.candidates
        assert {str(i) for i in pruned.result.satisfied} == {
            str(i) for i in plain.result.satisfied
        }

    def test_items_vs_sql_rows_exclusive(self, dataset):
        external = run_strategy("SCOP", dataset.db, "brute-force")
        sql = run_strategy("SCOP", dataset.db, "sql-join")
        assert external.items_read > 0 and external.sql_rows_scanned == 0
        assert sql.sql_rows_scanned > 0 and sql.items_read == 0

"""Cross-module integration tests on the three paper datasets (tiny scale)."""

import pytest

from repro.core import DiscoveryConfig, discover_inds
from repro.datagen import generate_biosql, generate_openmms, generate_scop


@pytest.fixture(scope="module")
def datasets():
    return {
        "biosql": generate_biosql("tiny"),
        "scop": generate_scop("tiny"),
        "openmms": generate_openmms("tiny"),
    }


@pytest.mark.parametrize("name", ["biosql", "scop", "openmms"])
def test_external_strategies_agree_on_paper_datasets(datasets, name):
    db = datasets[name].db
    results = {}
    for strategy in ("reference", "brute-force", "single-pass",
                     "merge-single-pass", "blockwise"):
        result = discover_inds(db, DiscoveryConfig(strategy=strategy))
        results[strategy] = {str(i) for i in result.satisfied}
    baseline = results["reference"]
    for strategy, inds in results.items():
        assert inds == baseline, f"{strategy} disagrees on {name}"


@pytest.mark.parametrize("name", ["biosql", "scop"])
def test_sql_strategies_agree_on_paper_datasets(datasets, name):
    db = datasets[name].db
    baseline = {
        str(i)
        for i in discover_inds(db, DiscoveryConfig(strategy="reference")).satisfied
    }
    for strategy in ("sql-join", "sql-minus", "sql-notin"):
        result = discover_inds(db, DiscoveryConfig(strategy=strategy))
        assert {str(i) for i in result.satisfied} == baseline, strategy


def test_roundtrip_through_csv_preserves_inds(datasets, tmp_path):
    """CSV export → reload (schema-less!) → identical discovered INDs."""
    from repro.db import load_csv_directory, write_csv_directory

    db = datasets["scop"].db
    original = {
        str(i)
        for i in discover_inds(db, DiscoveryConfig()).satisfied
    }
    path = write_csv_directory(db, tmp_path / "dump")
    (path / "_schema.json").unlink()
    reloaded = load_csv_directory(path, name="reloaded")
    recovered = {
        str(i)
        for i in discover_inds(reloaded, DiscoveryConfig()).satisfied
    }
    assert recovered == original


def test_pretest_combinations_are_sound(datasets):
    """Any combination of sound pretests must never change the result."""
    from repro.core.candidates import PretestConfig

    db = datasets["scop"].db
    baseline = {
        str(i)
        for i in discover_inds(
            db,
            DiscoveryConfig(pretests=PretestConfig(cardinality=False)),
        ).satisfied
    }
    for cardinality in (False, True):
        for max_value in (False, True):
            for min_value in (False, True):
                config = DiscoveryConfig(
                    pretests=PretestConfig(
                        cardinality=cardinality,
                        max_value=max_value,
                        min_value=min_value,
                    )
                )
                got = {str(i) for i in discover_inds(db, config).satisfied}
                assert got == baseline, (cardinality, max_value, min_value)


def test_openmms_blockwise_small_budget(datasets):
    """The Sec. 4.2 scenario end-to-end: tight file budget, same INDs."""
    db = datasets["openmms"].db
    unbounded = discover_inds(db, DiscoveryConfig(strategy="merge-single-pass"))
    blocked = discover_inds(
        db, DiscoveryConfig(strategy="blockwise", max_open_files=8)
    )
    assert {str(i) for i in blocked.satisfied} == {
        str(i) for i in unbounded.satisfied
    }
    assert blocked.validator_stats.peak_open_files <= 8

"""Skip-scans: seeking past blocks whose recorded max is below a sought value."""

from __future__ import annotations

import pytest

from repro.core.brute_force import BruteForceValidator
from repro.core.candidates import Candidate
from repro.db.schema import AttributeRef
from repro.errors import SpoolError
from repro.storage.cursors import IOStats
from repro.storage.sorted_sets import SpoolDirectory

REF = AttributeRef("t", "a")


def _spool(tmp_path, values, fmt="binary", block_size=4) -> SpoolDirectory:
    spool = SpoolDirectory.create(tmp_path / fmt, format=fmt, block_size=block_size)
    spool.add_values(REF, values)
    spool.save_index()
    return spool


class TestSkipBlocksBelow:
    def test_skips_whole_blocks_and_counts_them(self, tmp_path):
        values = [f"{i:04d}" for i in range(20)]  # 5 blocks of 4
        spool = _spool(tmp_path, values)
        io = IOStats()
        cursor = spool.open_cursor(REF, io)
        skipped = cursor.skip_blocks_below("0013")
        # Blocks 0-2 end at 0003/0007/0011 < 0013; block 3 ends at 0015.
        assert skipped == 3
        assert io.blocks_skipped == 3
        assert io.values_skipped == 12
        assert cursor.read_batch(3) == ["0012", "0013", "0014"]
        assert io.items_read == 3
        cursor.close()

    def test_noop_when_nothing_qualifies(self, tmp_path):
        spool = _spool(tmp_path, [f"{i:04d}" for i in range(8)])
        io = IOStats()
        cursor = spool.open_cursor(REF, io)
        assert cursor.skip_blocks_below("0000") == 0
        assert cursor.skip_blocks_below("") == 0
        assert io.blocks_skipped == 0
        cursor.close()

    def test_buffered_values_survive_a_skip(self, tmp_path):
        spool = _spool(tmp_path, [f"{i:04d}" for i in range(20)])
        cursor = spool.open_cursor(REF)
        assert cursor.read_batch(2) == ["0000", "0001"]  # block 0 buffered
        cursor.skip_blocks_below("0013")
        # 0002/0003 were already decoded into the buffer; the skip only
        # affects frames still on disk.
        assert cursor.read_batch(4) == ["0002", "0003", "0012", "0013"]
        cursor.close()

    def test_text_cursor_is_a_noop(self, tmp_path):
        values = [f"{i:04d}" for i in range(20)]
        spool = _spool(tmp_path, values, fmt="text")
        io = IOStats()
        cursor = spool.open_cursor(REF, io)
        assert cursor.skip_blocks_below("0015") == 0
        assert cursor.read_batch(1) == ["0000"]
        assert io.blocks_skipped == 0
        cursor.close()

    def test_closed_cursor_raises(self, tmp_path):
        spool = _spool(tmp_path, ["a", "b"])
        cursor = spool.open_cursor(REF)
        cursor.close()
        with pytest.raises(SpoolError, match="after close"):
            cursor.skip_blocks_below("z")


class TestBruteForceSkipScan:
    def _setup(self, tmp_path, fmt="binary"):
        spool = SpoolDirectory.create(tmp_path / fmt, format=fmt, block_size=4)
        dep = AttributeRef("t", "dep")
        ref = AttributeRef("t", "ref")
        # Sparse dependent against a dense reference: between consecutive
        # dependent values lie whole reference blocks worth skipping.
        spool.add_values(dep, [f"{i:05d}" for i in range(0, 400, 100)])
        spool.add_values(ref, [f"{i:05d}" for i in range(0, 401)])
        spool.save_index()
        return spool, [Candidate(dep, ref)]

    def test_same_decisions_fewer_items(self, tmp_path):
        # Small batches so the scan hits refill points (the only places a
        # skip can trigger) many times between the sparse dependent values.
        spool, candidates = self._setup(tmp_path)
        plain = BruteForceValidator(spool, batch_size=8).validate(candidates)
        skipping = BruteForceValidator(
            spool, skip_scan=True, batch_size=8
        ).validate(candidates)
        assert skipping.decisions == plain.decisions
        assert skipping.stats.satisfied_count == 1
        assert skipping.stats.blocks_skipped > 0
        assert (
            skipping.stats.items_read + skipping.stats.values_skipped
            <= plain.stats.items_read
        )
        assert skipping.stats.items_read < plain.stats.items_read
        assert plain.stats.blocks_skipped == 0

    def test_refuted_candidates_unchanged(self, tmp_path):
        spool = SpoolDirectory.create(tmp_path / "r", format="binary", block_size=4)
        dep = AttributeRef("t", "dep")
        ref = AttributeRef("t", "ref")
        spool.add_values(dep, ["00050", "99999"])  # second value missing
        spool.add_values(ref, [f"{i:05d}" for i in range(0, 400)])
        spool.save_index()
        candidates = [Candidate(dep, ref)]
        plain = BruteForceValidator(spool, batch_size=8).validate(candidates)
        skipping = BruteForceValidator(
            spool, skip_scan=True, batch_size=8
        ).validate(candidates)
        assert plain.decisions == skipping.decisions
        assert skipping.stats.refuted_count == 1
        assert skipping.stats.blocks_skipped > 0

    def test_text_spools_fall_back_to_plain_scans(self, tmp_path):
        spool, candidates = self._setup(tmp_path, fmt="text")
        plain = BruteForceValidator(spool).validate(candidates)
        skipping = BruteForceValidator(spool, skip_scan=True).validate(candidates)
        assert skipping.decisions == plain.decisions
        assert skipping.stats.items_read == plain.stats.items_read
        assert skipping.stats.blocks_skipped == 0

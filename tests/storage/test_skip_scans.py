"""Skip-scans: seeking past blocks whose recorded max is below a sought value."""

from __future__ import annotations

import pytest

from repro.core.brute_force import BruteForceValidator
from repro.core.candidates import Candidate
from repro.db.schema import AttributeRef
from repro.errors import SpoolError
from repro.storage.cursors import IOStats
from repro.storage.sorted_sets import SpoolDirectory

REF = AttributeRef("t", "a")


def _spool(tmp_path, values, fmt="binary", block_size=4) -> SpoolDirectory:
    spool = SpoolDirectory.create(tmp_path / fmt, format=fmt, block_size=block_size)
    spool.add_values(REF, values)
    spool.save_index()
    return spool


class TestSkipBlocksBelow:
    def test_skips_whole_blocks_and_counts_them(self, tmp_path):
        values = [f"{i:04d}" for i in range(20)]  # 5 blocks of 4
        spool = _spool(tmp_path, values)
        io = IOStats()
        cursor = spool.open_cursor(REF, io)
        skipped = cursor.skip_blocks_below("0013")
        # Blocks 0-2 end at 0003/0007/0011 < 0013; block 3 ends at 0015.
        assert skipped == 3
        assert io.blocks_skipped == 3
        assert io.values_skipped == 12
        assert cursor.read_batch(3) == ["0012", "0013", "0014"]
        assert io.items_read == 3
        cursor.close()

    def test_noop_when_nothing_qualifies(self, tmp_path):
        spool = _spool(tmp_path, [f"{i:04d}" for i in range(8)])
        io = IOStats()
        cursor = spool.open_cursor(REF, io)
        assert cursor.skip_blocks_below("0000") == 0
        assert cursor.skip_blocks_below("") == 0
        assert io.blocks_skipped == 0
        cursor.close()

    def test_buffered_values_survive_a_skip(self, tmp_path):
        spool = _spool(tmp_path, [f"{i:04d}" for i in range(20)])
        cursor = spool.open_cursor(REF)
        assert cursor.read_batch(2) == ["0000", "0001"]  # block 0 buffered
        cursor.skip_blocks_below("0013")
        # 0002/0003 were already decoded into the buffer; the skip only
        # affects frames still on disk.
        assert cursor.read_batch(4) == ["0002", "0003", "0012", "0013"]
        cursor.close()

    def test_text_cursor_is_a_noop(self, tmp_path):
        values = [f"{i:04d}" for i in range(20)]
        spool = _spool(tmp_path, values, fmt="text")
        io = IOStats()
        cursor = spool.open_cursor(REF, io)
        assert cursor.skip_blocks_below("0015") == 0
        assert cursor.read_batch(1) == ["0000"]
        assert io.blocks_skipped == 0
        cursor.close()

    def test_closed_cursor_raises(self, tmp_path):
        spool = _spool(tmp_path, ["a", "b"])
        cursor = spool.open_cursor(REF)
        cursor.close()
        with pytest.raises(SpoolError, match="after close"):
            cursor.skip_blocks_below("z")


class TestBruteForceSkipScan:
    def _setup(self, tmp_path, fmt="binary"):
        spool = SpoolDirectory.create(tmp_path / fmt, format=fmt, block_size=4)
        dep = AttributeRef("t", "dep")
        ref = AttributeRef("t", "ref")
        # Sparse dependent against a dense reference: between consecutive
        # dependent values lie whole reference blocks worth skipping.
        spool.add_values(dep, [f"{i:05d}" for i in range(0, 400, 100)])
        spool.add_values(ref, [f"{i:05d}" for i in range(0, 401)])
        spool.save_index()
        return spool, [Candidate(dep, ref)]

    def test_same_decisions_fewer_items(self, tmp_path):
        # Small batches so the scan hits refill points (the only places a
        # skip can trigger) many times between the sparse dependent values.
        spool, candidates = self._setup(tmp_path)
        plain = BruteForceValidator(spool, batch_size=8).validate(candidates)
        skipping = BruteForceValidator(
            spool, skip_scan=True, batch_size=8
        ).validate(candidates)
        assert skipping.decisions == plain.decisions
        assert skipping.stats.satisfied_count == 1
        assert skipping.stats.blocks_skipped > 0
        assert (
            skipping.stats.items_read + skipping.stats.values_skipped
            <= plain.stats.items_read
        )
        assert skipping.stats.items_read < plain.stats.items_read
        assert plain.stats.blocks_skipped == 0

    def test_refuted_candidates_unchanged(self, tmp_path):
        spool = SpoolDirectory.create(tmp_path / "r", format="binary", block_size=4)
        dep = AttributeRef("t", "dep")
        ref = AttributeRef("t", "ref")
        spool.add_values(dep, ["00050", "99999"])  # second value missing
        spool.add_values(ref, [f"{i:05d}" for i in range(0, 400)])
        spool.save_index()
        candidates = [Candidate(dep, ref)]
        plain = BruteForceValidator(spool, batch_size=8).validate(candidates)
        skipping = BruteForceValidator(
            spool, skip_scan=True, batch_size=8
        ).validate(candidates)
        assert plain.decisions == skipping.decisions
        assert skipping.stats.refuted_count == 1
        assert skipping.stats.blocks_skipped > 0

    def test_text_spools_fall_back_to_plain_scans(self, tmp_path):
        spool, candidates = self._setup(tmp_path, fmt="text")
        plain = BruteForceValidator(spool).validate(candidates)
        skipping = BruteForceValidator(spool, skip_scan=True).validate(candidates)
        assert skipping.decisions == plain.decisions
        assert skipping.stats.items_read == plain.stats.items_read
        assert skipping.stats.blocks_skipped == 0


class TestMergeFrontierSkipScan:
    """The merge validator's frontier skips: purely referenced sides only.

    A sparse dependent against a dense reference is the paying shape: when
    the dependent jumps from 00100 to 00200, the reference side holds whole
    blocks of values in between that can never match anything — the frontier
    seeks past them.  Decisions, comparisons and the satisfied set must be
    identical to the plain merge; only the I/O counters may improve.
    """

    def _setup(self, tmp_path, fmt="binary"):
        from repro.core.merge_single_pass import MergeSinglePassValidator

        spool = SpoolDirectory.create(tmp_path / fmt, format=fmt, block_size=4)
        dep = AttributeRef("t", "dep")
        ref = AttributeRef("t", "ref")
        spool.add_values(dep, [f"{i:05d}" for i in range(0, 400, 100)])
        spool.add_values(ref, [f"{i:05d}" for i in range(0, 401)])
        spool.save_index()
        return spool, [Candidate(dep, ref)], MergeSinglePassValidator

    def test_same_decisions_fewer_items_and_bytes(self, tmp_path):
        # Small batches so refills (the only places a frontier seek can
        # trigger) happen many times between the sparse dependent values.
        spool, candidates, validator_cls = self._setup(tmp_path)
        plain = validator_cls(spool, batch_size=8).validate(candidates)
        skipping = validator_cls(
            spool, skip_scan=True, batch_size=8
        ).validate(candidates)
        assert skipping.decisions == plain.decisions
        assert skipping.stats.satisfied_count == 1
        assert skipping.stats.comparisons == plain.stats.comparisons
        assert skipping.stats.blocks_skipped > 0
        assert skipping.stats.items_read < plain.stats.items_read
        assert (
            skipping.stats.items_read + skipping.stats.values_skipped
            <= plain.stats.items_read
        )
        assert skipping.stats.bytes_read < plain.stats.bytes_read
        assert plain.stats.blocks_skipped == 0

    def test_refuted_candidates_unchanged(self, tmp_path):
        from repro.core.merge_single_pass import MergeSinglePassValidator

        spool = SpoolDirectory.create(
            tmp_path / "r", format="binary", block_size=4
        )
        dep = AttributeRef("t", "dep")
        ref = AttributeRef("t", "ref")
        spool.add_values(dep, ["00050", "99999"])  # second value missing
        spool.add_values(ref, [f"{i:05d}" for i in range(0, 400)])
        spool.save_index()
        candidates = [Candidate(dep, ref)]
        plain = MergeSinglePassValidator(spool, batch_size=8).validate(
            candidates
        )
        skipping = MergeSinglePassValidator(
            spool, skip_scan=True, batch_size=8
        ).validate(candidates)
        assert plain.decisions == skipping.decisions
        assert skipping.stats.refuted_count == 1
        assert skipping.stats.blocks_skipped > 0

    def test_attribute_on_both_sides_never_skipped(self, tmp_path):
        """A live dependent side pins its attribute: no frontier seeks.

        With a [= b and b [= c, attribute b is referenced *and* dependent,
        so the frontier must leave it alone — its own containment test
        needs every value.  Only c, purely referenced, may skip.
        """
        from repro.core.merge_single_pass import MergeSinglePassValidator

        spool = SpoolDirectory.create(
            tmp_path / "chain", format="binary", block_size=4
        )
        a = AttributeRef("t", "a")
        b = AttributeRef("t", "b")
        c = AttributeRef("t", "c")
        spool.add_values(a, [f"{i:05d}" for i in range(0, 300, 150)])
        spool.add_values(b, [f"{i:05d}" for i in range(0, 301, 3)])
        spool.add_values(c, [f"{i:05d}" for i in range(0, 302)])
        spool.save_index()
        candidates = [Candidate(a, b), Candidate(b, c)]
        plain = MergeSinglePassValidator(spool, batch_size=8).validate(
            candidates
        )
        skipping = MergeSinglePassValidator(
            spool, skip_scan=True, batch_size=8
        ).validate(candidates)
        assert skipping.decisions == plain.decisions
        assert skipping.stats.satisfied_count == plain.stats.satisfied_count

    def test_text_spools_fall_back_to_plain_scans(self, tmp_path):
        spool, candidates, validator_cls = self._setup(tmp_path, fmt="text")
        plain = validator_cls(spool).validate(candidates)
        skipping = validator_cls(spool, skip_scan=True).validate(candidates)
        assert skipping.decisions == plain.decisions
        assert skipping.stats.items_read == plain.stats.items_read
        assert skipping.stats.blocks_skipped == 0

    @pytest.mark.parametrize("workers", (1, 2))
    def test_partitioned_merge_propagates_skip_scan(self, tmp_path, workers):
        """Workers run default batch sizes, so the spread must exceed one batch."""
        from repro.core.merge_single_pass import MergeSinglePassValidator
        from repro.parallel import PartitionedMergeValidator

        spool = SpoolDirectory.create(
            tmp_path / "wide", format="binary", block_size=16
        )
        dep = AttributeRef("t", "dep")
        ref = AttributeRef("t", "ref")
        spool.add_values(dep, ["00000", "08999"])
        spool.add_values(ref, [f"{i:05d}" for i in range(0, 9000)])
        spool.save_index()
        candidates = [Candidate(dep, ref)]
        sequential = MergeSinglePassValidator(
            spool, skip_scan=True
        ).validate(candidates)
        assert sequential.stats.blocks_skipped > 0
        pooled = PartitionedMergeValidator(
            spool, workers=workers, skip_scan=True
        ).validate(candidates)
        assert pooled.decisions == sequential.decisions
        assert pooled.stats.blocks_skipped == sequential.stats.blocks_skipped
        assert pooled.stats.items_read == sequential.stats.items_read
        assert pooled.stats.bytes_read == sequential.stats.bytes_read

    def test_discover_inds_merge_skip_scans_end_to_end(self, tmp_path):
        """The config flag reaches the merge engine through the runner."""
        from repro.core.runner import DiscoveryConfig, discover_inds
        from repro.db.database import Database
        from repro.db.schema import Column, TableSchema
        from repro.db.types import DataType

        db = Database("skippy")
        table = db.create_table(
            TableSchema(
                "t",
                [Column("dep", DataType.VARCHAR),
                 Column("ref", DataType.VARCHAR)],
            )
        )
        # The runner's merge validator reads default-sized batches, so the
        # reference spread must exceed one batch for any frontier seek.
        for r in range(6000):
            table.insert(
                {"dep": "00000" if r % 2 else "05999", "ref": f"{r:05d}"}
            )
        plain = discover_inds(
            db,
            DiscoveryConfig(strategy="merge-single-pass", spool_block_size=16),
        )
        skipping = discover_inds(
            db,
            DiscoveryConfig(
                strategy="merge-single-pass",
                spool_block_size=16,
                skip_scans=True,
            ),
        )
        assert {str(i) for i in skipping.satisfied} == {
            str(i) for i in plain.satisfied
        }
        assert skipping.validator_stats.blocks_skipped > 0
        assert (
            skipping.validator_stats.bytes_read
            < plain.validator_stats.bytes_read
        )

"""The content-addressed spool cache: hit, miss, and stale invalidation."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core import DiscoveryConfig, discover_inds
from repro.db import Column, Database, DataType, TableSchema
from repro.db.stats import collect_column_stats
from repro.storage import exporter
from repro.storage.exporter import export_database
from repro.storage.spool_cache import SpoolCache, catalog_fingerprint


def _db(rows: int = 20, extra: int | None = None) -> Database:
    db = Database("cachedb")
    table = db.create_table(
        TableSchema(
            "t",
            [
                Column("id", DataType.INTEGER, unique=True),
                Column("ref", DataType.INTEGER),
            ],
        )
    )
    for i in range(rows):
        table.insert({"id": i, "ref": i % 7})
    if extra is not None:
        table.insert({"id": extra, "ref": extra % 7})
    return db


def _fingerprint(db: Database) -> str:
    return catalog_fingerprint(db.name, collect_column_stats(db))


class TestCatalogFingerprint:
    def test_stable_for_identical_databases(self):
        assert _fingerprint(_db()) == _fingerprint(_db())

    def test_changes_on_any_data_or_schema_change(self):
        base = _fingerprint(_db())
        assert _fingerprint(_db(rows=21)) != base  # one extra row
        assert _fingerprint(_db(extra=999)) != base  # one extra value
        renamed = _db()
        renamed.name = "other"
        assert _fingerprint(renamed) != base

    def test_detects_stats_preserving_value_swap(self):
        """Counts and extrema can miss an edit; the value checksum must not.

        Both columns hold 3 distinct single-character values with identical
        min/max — every counted and extremal statistic agrees — yet the
        databases differ, so reusing one's spool for the other would return
        wrong INDs.
        """

        def tiny(values):
            db = Database("swap")
            table = db.create_table(
                TableSchema("t", [Column("v", DataType.VARCHAR)])
            )
            for value in values:
                table.insert({"v": value})
            return db

        assert _fingerprint(tiny(["a", "b", "d"])) != _fingerprint(
            tiny(["a", "c", "d"])
        )


class TestSpoolCache:
    def _populate(self, cache, db, fingerprint, **export_kwargs):
        spool, _ = export_database(
            db, str(cache.prepare(fingerprint)), **export_kwargs
        )
        return cache.publish(fingerprint, spool)

    def test_miss_then_hit(self, tmp_path):
        db = _db()
        fingerprint = _fingerprint(db)
        cache = SpoolCache(tmp_path / "cache")
        assert cache.lookup(fingerprint) is None
        spool = self._populate(cache, db, fingerprint)
        assert Path(spool.root) == cache.entry_path(fingerprint)
        cached = cache.lookup(fingerprint)
        assert cached is not None
        assert cached.catalog_hash == fingerprint
        assert cached.total_values() == spool.total_values()
        assert cache.entries() == [cache.entry_path(fingerprint)]

    def test_changed_catalog_misses(self, tmp_path):
        db = _db()
        cache = SpoolCache(tmp_path / "cache")
        self._populate(cache, db, _fingerprint(db))
        assert cache.lookup(_fingerprint(_db(extra=999))) is None

    def test_stale_entry_is_evicted_and_rebuilt_over(self, tmp_path):
        db = _db()
        fingerprint = _fingerprint(db)
        cache = SpoolCache(tmp_path / "cache")
        self._populate(cache, db, fingerprint)
        # Corrupt the recorded hash: the entry no longer proves it belongs
        # to this fingerprint and must not be trusted.
        index = cache.entry_path(fingerprint) / "index.json"
        doc = json.loads(index.read_text())
        doc["catalog_hash"] = "0" * 64
        index.write_text(json.dumps(doc))
        assert cache.lookup(fingerprint) is None
        assert not cache.entry_path(fingerprint).exists()  # evicted

    def test_corrupt_index_is_evicted_not_fatal(self, tmp_path):
        db = _db()
        fingerprint = _fingerprint(db)
        cache = SpoolCache(tmp_path / "cache")
        self._populate(cache, db, fingerprint)
        index = cache.entry_path(fingerprint) / "index.json"
        index.write_text(index.read_text()[:40])  # truncated JSON
        assert cache.lookup(fingerprint) is None
        assert not cache.entry_path(fingerprint).exists()

    def test_unpublished_staging_never_hits(self, tmp_path):
        db = _db()
        fingerprint = _fingerprint(db)
        cache = SpoolCache(tmp_path / "cache")
        export_database(db, str(cache.prepare(fingerprint)))
        # Crash before publish(): nothing exists under the entry path.
        assert cache.lookup(fingerprint) is None
        assert not cache.entry_path(fingerprint).exists()
        assert cache.entries() == []  # staging dirs are not entries

    def test_differently_configured_entries_coexist(self, tmp_path):
        """Format/block-size are part of the slot: no thrashing between runs."""
        db = _db()
        fingerprint = _fingerprint(db)
        cache = SpoolCache(tmp_path / "cache")
        self._populate(cache, db, fingerprint, spool_format="text")
        assert cache.lookup(fingerprint, spool_format="binary") is None
        assert cache.entry_path(fingerprint, "text").exists()
        self._populate(cache, db, fingerprint, spool_format="binary")
        # Both formats now hit, each from its own entry.
        assert cache.lookup(fingerprint, spool_format="text") is not None
        assert cache.lookup(fingerprint, spool_format="binary") is not None
        assert len(cache.entries()) == 2

    def test_block_size_mismatch_is_a_miss(self, tmp_path):
        db = _db()
        fingerprint = _fingerprint(db)
        cache = SpoolCache(tmp_path / "cache")
        self._populate(
            cache, db, fingerprint, spool_format="binary", block_size=8
        )
        assert cache.lookup(fingerprint, block_size=4) is None
        assert cache.lookup(fingerprint, block_size=8) is not None
        # Text spools have no blocks; the requested size is irrelevant.
        cache2 = SpoolCache(tmp_path / "cache2")
        self._populate(cache2, db, fingerprint, spool_format="text")
        assert (
            cache2.lookup(fingerprint, spool_format="text", block_size=4)
            is not None
        )

    def test_concurrent_publish_replaces_equivalent_entry(self, tmp_path):
        db = _db()
        fingerprint = _fingerprint(db)
        cache = SpoolCache(tmp_path / "cache")
        staging_a = cache.prepare(fingerprint)
        spool_a, _ = export_database(db, str(staging_a))
        # A second process races past us and publishes first; our publish
        # swaps its complete, equivalent entry for ours in one rename.
        other = SpoolCache(tmp_path / "cache")
        self._populate(other, db, fingerprint)
        published = cache.publish(fingerprint, spool_a)
        assert Path(published.root) == cache.entry_path(fingerprint)
        assert not staging_a.exists()
        assert cache.lookup(fingerprint) is not None


class TestDiscoverIndsReuse:
    def _config(self, cache_dir, **kwargs) -> DiscoveryConfig:
        return DiscoveryConfig(
            strategy="brute-force",
            reuse_spool=True,
            cache_dir=str(cache_dir),
            **kwargs,
        )

    def test_second_run_performs_zero_export_work(self, tmp_path, monkeypatch):
        db = _db()
        calls = {"count": 0}
        real_export = exporter.export_database

        def counting_export(*args, **kwargs):
            calls["count"] += 1
            return real_export(*args, **kwargs)

        # The runner resolves the exporter through its own import; patch both.
        monkeypatch.setattr(exporter, "export_database", counting_export)
        monkeypatch.setattr(
            "repro.core.runner.export_database", counting_export
        )
        first = discover_inds(db, self._config(tmp_path / "cache"))
        assert calls["count"] == 1
        assert not first.spool_cache_hit
        assert first.export_values_written > 0

        second = discover_inds(db, self._config(tmp_path / "cache"))
        assert calls["count"] == 1  # exporter never called again
        assert second.spool_cache_hit
        assert second.export_values_written == 0
        assert second.export_values_scanned == 0
        assert second.satisfied == first.satisfied
        assert second.validator_stats.items_read == first.validator_stats.items_read

    def test_changed_database_re_exports(self, tmp_path):
        cache = tmp_path / "cache"
        first = discover_inds(_db(), self._config(cache))
        changed = discover_inds(_db(extra=999), self._config(cache))
        assert not first.spool_cache_hit
        assert not changed.spool_cache_hit
        assert changed.export_values_written > 0

    def test_cache_survives_and_feeds_parallel_validation(self, tmp_path):
        cache = tmp_path / "cache"
        sequential = discover_inds(_db(), self._config(cache))
        parallel = discover_inds(
            _db(), self._config(cache, validation_workers=2)
        )
        assert parallel.spool_cache_hit
        assert parallel.satisfied == sequential.satisfied

    def test_reuse_requires_external_strategy(self, tmp_path):
        from repro.errors import DiscoveryError

        with pytest.raises(DiscoveryError, match="external"):
            DiscoveryConfig(
                strategy="sql-join", reuse_spool=True, cache_dir=str(tmp_path)
            ).validated()

    def test_reuse_rejects_explicit_spool_dir(self, tmp_path):
        from repro.errors import DiscoveryError

        with pytest.raises(DiscoveryError, match="spool_dir"):
            DiscoveryConfig(
                reuse_spool=True,
                cache_dir=str(tmp_path / "cache"),
                spool_dir=str(tmp_path / "spool"),
            ).validated()

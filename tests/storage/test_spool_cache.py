"""The content-addressed spool cache: hit, miss, and stale invalidation."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core import DiscoveryConfig, discover_inds
from repro.db import Column, Database, DataType, TableSchema
from repro.db.stats import collect_column_stats
from repro.storage import exporter
from repro.storage.exporter import export_database
from repro.storage.spool_cache import SpoolCache, catalog_fingerprint


def _db(rows: int = 20, extra: int | None = None) -> Database:
    db = Database("cachedb")
    table = db.create_table(
        TableSchema(
            "t",
            [
                Column("id", DataType.INTEGER, unique=True),
                Column("ref", DataType.INTEGER),
            ],
        )
    )
    for i in range(rows):
        table.insert({"id": i, "ref": i % 7})
    if extra is not None:
        table.insert({"id": extra, "ref": extra % 7})
    return db


def _fingerprint(db: Database) -> str:
    return catalog_fingerprint(db.name, collect_column_stats(db))


class TestCatalogFingerprint:
    def test_stable_for_identical_databases(self):
        assert _fingerprint(_db()) == _fingerprint(_db())

    def test_changes_on_any_data_or_schema_change(self):
        base = _fingerprint(_db())
        assert _fingerprint(_db(rows=21)) != base  # one extra row
        assert _fingerprint(_db(extra=999)) != base  # one extra value
        renamed = _db()
        renamed.name = "other"
        assert _fingerprint(renamed) != base

    def test_detects_stats_preserving_value_swap(self):
        """Counts and extrema can miss an edit; the value checksum must not.

        Both columns hold 3 distinct single-character values with identical
        min/max — every counted and extremal statistic agrees — yet the
        databases differ, so reusing one's spool for the other would return
        wrong INDs.
        """

        def tiny(values):
            db = Database("swap")
            table = db.create_table(
                TableSchema("t", [Column("v", DataType.VARCHAR)])
            )
            for value in values:
                table.insert({"v": value})
            return db

        assert _fingerprint(tiny(["a", "b", "d"])) != _fingerprint(
            tiny(["a", "c", "d"])
        )


class TestSpoolCache:
    def _populate(self, cache, db, fingerprint, **export_kwargs):
        spool, _ = export_database(
            db, str(cache.prepare(fingerprint)), **export_kwargs
        )
        return cache.publish(fingerprint, spool)

    def test_miss_then_hit(self, tmp_path):
        db = _db()
        fingerprint = _fingerprint(db)
        cache = SpoolCache(tmp_path / "cache")
        assert cache.lookup(fingerprint) is None
        spool = self._populate(cache, db, fingerprint)
        assert Path(spool.root) == cache.entry_path(fingerprint)
        cached = cache.lookup(fingerprint)
        assert cached is not None
        assert cached.catalog_hash == fingerprint
        assert cached.total_values() == spool.total_values()
        assert cache.entries() == [cache.entry_path(fingerprint)]

    def test_changed_catalog_misses(self, tmp_path):
        db = _db()
        cache = SpoolCache(tmp_path / "cache")
        self._populate(cache, db, _fingerprint(db))
        assert cache.lookup(_fingerprint(_db(extra=999))) is None

    def test_stale_entry_is_evicted_and_rebuilt_over(self, tmp_path):
        db = _db()
        fingerprint = _fingerprint(db)
        cache = SpoolCache(tmp_path / "cache")
        self._populate(cache, db, fingerprint)
        # Corrupt the recorded hash: the entry no longer proves it belongs
        # to this fingerprint and must not be trusted.
        index = cache.entry_path(fingerprint) / "index.json"
        doc = json.loads(index.read_text())
        doc["catalog_hash"] = "0" * 64
        index.write_text(json.dumps(doc))
        assert cache.lookup(fingerprint) is None
        assert not cache.entry_path(fingerprint).exists()  # evicted

    def test_corrupt_index_is_evicted_not_fatal(self, tmp_path):
        db = _db()
        fingerprint = _fingerprint(db)
        cache = SpoolCache(tmp_path / "cache")
        self._populate(cache, db, fingerprint)
        index = cache.entry_path(fingerprint) / "index.json"
        index.write_text(index.read_text()[:40])  # truncated JSON
        assert cache.lookup(fingerprint) is None
        assert not cache.entry_path(fingerprint).exists()

    def test_unpublished_staging_never_hits(self, tmp_path):
        db = _db()
        fingerprint = _fingerprint(db)
        cache = SpoolCache(tmp_path / "cache")
        export_database(db, str(cache.prepare(fingerprint)))
        # Crash before publish(): nothing exists under the entry path.
        assert cache.lookup(fingerprint) is None
        assert not cache.entry_path(fingerprint).exists()
        assert cache.entries() == []  # staging dirs are not entries

    def test_differently_configured_entries_coexist(self, tmp_path):
        """Format/block-size are part of the slot: no thrashing between runs."""
        db = _db()
        fingerprint = _fingerprint(db)
        cache = SpoolCache(tmp_path / "cache")
        self._populate(cache, db, fingerprint, spool_format="text")
        assert cache.lookup(fingerprint, spool_format="binary") is None
        assert cache.entry_path(fingerprint, "text").exists()
        self._populate(cache, db, fingerprint, spool_format="binary")
        # Both formats now hit, each from its own entry.
        assert cache.lookup(fingerprint, spool_format="text") is not None
        assert cache.lookup(fingerprint, spool_format="binary") is not None
        assert len(cache.entries()) == 2

    def test_block_size_mismatch_is_a_miss(self, tmp_path):
        db = _db()
        fingerprint = _fingerprint(db)
        cache = SpoolCache(tmp_path / "cache")
        self._populate(
            cache, db, fingerprint, spool_format="binary", block_size=8
        )
        assert cache.lookup(fingerprint, block_size=4) is None
        assert cache.lookup(fingerprint, block_size=8) is not None
        # Text spools have no blocks; the requested size is irrelevant.
        cache2 = SpoolCache(tmp_path / "cache2")
        self._populate(cache2, db, fingerprint, spool_format="text")
        assert (
            cache2.lookup(fingerprint, spool_format="text", block_size=4)
            is not None
        )

    def test_concurrent_publish_replaces_equivalent_entry(self, tmp_path):
        db = _db()
        fingerprint = _fingerprint(db)
        cache = SpoolCache(tmp_path / "cache")
        staging_a = cache.prepare(fingerprint)
        spool_a, _ = export_database(db, str(staging_a))
        # A second process races past us and publishes first; our publish
        # swaps its complete, equivalent entry for ours in one rename.
        other = SpoolCache(tmp_path / "cache")
        self._populate(other, db, fingerprint)
        published = cache.publish(fingerprint, spool_a)
        assert Path(published.root) == cache.entry_path(fingerprint)
        assert not staging_a.exists()
        assert cache.lookup(fingerprint) is not None


class TestDiscoverIndsReuse:
    def _config(self, cache_dir, **kwargs) -> DiscoveryConfig:
        return DiscoveryConfig(
            strategy="brute-force",
            reuse_spool=True,
            cache_dir=str(cache_dir),
            **kwargs,
        )

    def test_second_run_performs_zero_export_work(self, tmp_path, monkeypatch):
        db = _db()
        calls = {"count": 0}
        real_export = exporter.export_database

        def counting_export(*args, **kwargs):
            calls["count"] += 1
            return real_export(*args, **kwargs)

        # The runner resolves the exporter through its own import; patch both.
        monkeypatch.setattr(exporter, "export_database", counting_export)
        monkeypatch.setattr(
            "repro.core.runner.export_database", counting_export
        )
        first = discover_inds(db, self._config(tmp_path / "cache"))
        assert calls["count"] == 1
        assert not first.spool_cache_hit
        assert first.export_values_written > 0

        second = discover_inds(db, self._config(tmp_path / "cache"))
        assert calls["count"] == 1  # exporter never called again
        assert second.spool_cache_hit
        assert second.export_values_written == 0
        assert second.export_values_scanned == 0
        assert second.satisfied == first.satisfied
        assert second.validator_stats.items_read == first.validator_stats.items_read

    def test_changed_database_re_exports(self, tmp_path):
        cache = tmp_path / "cache"
        first = discover_inds(_db(), self._config(cache))
        changed = discover_inds(_db(extra=999), self._config(cache))
        assert not first.spool_cache_hit
        assert not changed.spool_cache_hit
        assert changed.export_values_written > 0

    def test_cache_survives_and_feeds_parallel_validation(self, tmp_path):
        cache = tmp_path / "cache"
        sequential = discover_inds(_db(), self._config(cache))
        parallel = discover_inds(
            _db(), self._config(cache, validation_workers=2)
        )
        assert parallel.spool_cache_hit
        assert parallel.satisfied == sequential.satisfied

    def test_reuse_requires_external_strategy(self, tmp_path):
        from repro.errors import DiscoveryError

        with pytest.raises(DiscoveryError, match="external"):
            DiscoveryConfig(
                strategy="sql-join", reuse_spool=True, cache_dir=str(tmp_path)
            ).validated()

    def test_reuse_rejects_explicit_spool_dir(self, tmp_path):
        from repro.errors import DiscoveryError

        with pytest.raises(DiscoveryError, match="spool_dir"):
            DiscoveryConfig(
                reuse_spool=True,
                cache_dir=str(tmp_path / "cache"),
                spool_dir=str(tmp_path / "spool"),
            ).validated()


class TestLruEviction:
    """The LRU-by-mtime eviction policy behind `repro-ind cache` and budgets."""

    def _entries(self, cache, count):
        """Publish `count` distinct-fingerprint entries, oldest first."""
        import os
        import time

        infos = []
        for i in range(count):
            db = _db(rows=10 + i)
            db.name = f"lru{i}"  # distinct catalog => distinct fingerprint
            fingerprint = catalog_fingerprint(db.name, collect_column_stats(db))
            spool, _ = export_database(db, str(cache.prepare(fingerprint)))
            cache.publish(fingerprint, spool)
            entry = cache.entry_path(fingerprint)
            # Deterministic, well-spread recency regardless of clock tick.
            stamp = time.time() - 1000 + i * 10
            os.utime(entry, (stamp, stamp))
            infos.append((fingerprint, entry))
        return infos

    def test_list_entries_reports_metadata_stalest_first(self, tmp_path):
        cache = SpoolCache(tmp_path / "cache")
        published = self._entries(cache, 3)
        listed = cache.list_entries()
        assert [info.path for info in listed] == [e for _, e in published]
        for info in listed:
            assert info.spool_format == "binary"
            assert info.block_size is not None
            assert info.size_bytes > 0
            assert info.attribute_count == 2  # id + ref
            assert any(fp.startswith(info.fingerprint_prefix)
                       for fp, _ in published)
        assert cache.total_bytes() == sum(i.size_bytes for i in listed)

    def test_enforce_budget_evicts_stalest_first(self, tmp_path):
        cache = SpoolCache(tmp_path / "cache")
        published = self._entries(cache, 3)
        sizes = {i.path: i.size_bytes for i in cache.list_entries()}
        keep_two = sizes[published[1][1]] + sizes[published[2][1]]
        evicted = cache.enforce_budget(max_bytes=keep_two)
        assert [info.path for info in evicted] == [published[0][1]]
        assert not published[0][1].exists()
        assert published[1][1].exists() and published[2][1].exists()
        assert cache.total_bytes() <= keep_two

    def test_hit_refreshes_recency(self, tmp_path):
        cache = SpoolCache(tmp_path / "cache")
        published = self._entries(cache, 3)
        oldest_fp = published[0][0]
        assert cache.lookup(oldest_fp) is not None  # touch: now most recent
        listed = cache.list_entries()
        assert listed[-1].path == published[0][1], (
            "a hit must move the entry to the most-recent end"
        )
        # Budget for one entry: the freshly hit one must be the survivor.
        evicted = cache.enforce_budget(max_bytes=listed[-1].size_bytes)
        assert published[0][1].exists()
        assert {info.path for info in evicted} == {
            published[1][1], published[2][1]
        }

    def test_publish_with_budget_never_evicts_its_own_entry(self, tmp_path):
        cache = SpoolCache(tmp_path / "cache", max_bytes=1)  # absurdly small
        db = _db()
        fingerprint = _fingerprint(db)
        spool, _ = export_database(db, str(cache.prepare(fingerprint)))
        published = cache.publish(fingerprint, spool)
        # Over budget, but the just-published entry is protected...
        assert Path(published.root).exists()
        assert cache.lookup(fingerprint) is not None
        # ...while the next publish evicts it as the stalest unprotected one.
        other = _db(rows=33)
        other.name = "lru-other"
        fp2 = catalog_fingerprint(other.name, collect_column_stats(other))
        spool2, _ = export_database(other, str(cache.prepare(fp2)))
        cache.publish(fp2, spool2)
        assert cache.lookup(fingerprint) is None
        assert cache.lookup(fp2) is not None

    def test_eviction_racing_a_concurrent_hit_is_safe(self, tmp_path):
        """A reader holding a cursor survives eviction of its entry."""
        cache = SpoolCache(tmp_path / "cache")
        db = _db(rows=50)
        fingerprint = _fingerprint(db)
        spool, _ = export_database(db, str(cache.prepare(fingerprint)))
        cache.publish(fingerprint, spool)
        hit = cache.lookup(fingerprint)
        ref = hit.attributes()[0]
        cursor = hit.open_cursor(ref)
        first = cursor.read_batch(5)
        assert len(first) == 5
        # Eviction renames the entry aside before deleting, so the open
        # file descriptor keeps working (POSIX) and a subsequent lookup
        # is a clean miss, never a torn read.
        assert cache.evict(fingerprint)
        rest = cursor.read_batch(10_000)
        assert len(first) + len(rest) == hit.get(ref).count
        cursor.close()
        assert cache.lookup(fingerprint) is None

    def test_evict_prefix_accepts_the_full_fingerprint(self, tmp_path):
        """The full 64-char digest (longer than the stored 32-char entry
        prefix, and the natural thing to paste from logs) must match."""
        cache = SpoolCache(tmp_path / "cache")
        published = self._entries(cache, 1)
        full = published[0][0]
        assert len(full) == 64
        assert [i.path for i in cache.evict_prefix(full)] == [published[0][1]]
        assert cache.list_entries() == []

    def test_evict_prefix_and_evict_all(self, tmp_path):
        cache = SpoolCache(tmp_path / "cache")
        published = self._entries(cache, 2)
        prefix = published[0][0][:8]
        evicted = cache.evict_prefix(prefix)
        assert [info.path for info in evicted] == [published[0][1]]
        with pytest.raises(Exception, match="empty prefix"):
            cache.evict_prefix("")
        assert [i.path for i in cache.evict_all()] == [published[1][1]]
        assert cache.list_entries() == []


class TestOrphans:
    """Operator visibility into never-published working directories."""

    def test_empty_cache_has_no_orphans(self, tmp_path):
        assert SpoolCache(tmp_path / "cache").list_orphans() == []

    def test_abandoned_staging_is_listed_and_reclaimed(self, tmp_path):
        db = _db()
        fingerprint = _fingerprint(db)
        cache = SpoolCache(tmp_path / "cache")
        # A completed export that crashed before publish: full spool files
        # in staging, no catalog_hash, invisible to lookup.
        export_database(db, str(cache.prepare(fingerprint)))
        orphans = cache.list_orphans()
        assert [o.kind for o in orphans] == ["staging"]
        assert orphans[0].size_bytes > 0
        assert orphans[0].name.startswith(".staging-")
        assert cache.lookup(fingerprint) is None
        evicted = cache.evict_orphans()
        assert evicted == orphans
        assert cache.list_orphans() == []
        assert not orphans[0].path.exists()

    def test_published_entries_are_never_orphans(self, tmp_path):
        db = _db()
        fingerprint = _fingerprint(db)
        cache = SpoolCache(tmp_path / "cache")
        spool, _ = export_database(db, str(cache.prepare(fingerprint)))
        cache.publish(fingerprint, spool)
        assert cache.list_orphans() == []
        assert cache.evict_orphans() == []
        # Eviction of orphans must leave the real entry untouched.
        (cache.root / ".doomed-leftover").mkdir()
        assert [o.kind for o in cache.list_orphans()] == ["doomed"]
        cache.evict_orphans()
        assert cache.lookup(fingerprint) is not None

    def test_orphans_listed_stalest_first(self, tmp_path):
        import os as _os
        import time as _time

        cache = SpoolCache(tmp_path / "cache")
        old = cache.prepare("a" * 64)
        new = cache.prepare("b" * 64)
        stamp = _time.time() - 3600
        _os.utime(old, (stamp, stamp))
        assert [o.path for o in cache.list_orphans()] == [old, new]

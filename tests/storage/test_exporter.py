"""Tests for database → spool extraction."""

import pytest

from repro.db.database import Database
from repro.db.schema import AttributeRef, Column, TableSchema
from repro.db.types import DataType
from repro.storage.exporter import export_database


@pytest.fixture()
def db() -> Database:
    database = Database("exp")
    t = database.create_table(
        TableSchema(
            "t",
            [
                Column("num", DataType.INTEGER),
                Column("txt", DataType.VARCHAR),
                Column("blob", DataType.BLOB),
                Column("clob", DataType.CLOB),
                Column("empty", DataType.VARCHAR),
            ],
        )
    )
    t.insert({"num": 10, "txt": "b", "blob": b"x", "clob": "long"})
    t.insert({"num": 9, "txt": "a", "blob": None, "clob": None})
    t.insert({"num": 10, "txt": None, "blob": None, "clob": None})
    return database


class TestExport:
    def test_sorted_distinct_rendered(self, db, tmp_path):
        spool, stats = export_database(db, str(tmp_path / "s"))
        num = spool.get(AttributeRef("t", "num"))
        # Lexicographic order over rendered values: "10" < "9".
        assert num.values() == ["10", "9"]
        assert stats.values_scanned >= 5
        assert stats.values_written == 4  # num:2 txt:2

    def test_lob_columns_skipped(self, db, tmp_path):
        spool, _ = export_database(db, str(tmp_path / "s"))
        assert AttributeRef("t", "blob") not in spool
        assert AttributeRef("t", "clob") not in spool

    def test_empty_attributes_dropped(self, db, tmp_path):
        spool, stats = export_database(db, str(tmp_path / "s"))
        assert AttributeRef("t", "empty") not in spool
        assert stats.skipped_empty == 1

    def test_empty_attributes_kept_on_request(self, db, tmp_path):
        spool, _ = export_database(db, str(tmp_path / "s"), include_empty=True)
        assert AttributeRef("t", "empty") in spool
        assert spool.get(AttributeRef("t", "empty")).is_empty

    def test_attribute_subset(self, db, tmp_path):
        ref = AttributeRef("t", "txt")
        spool, stats = export_database(db, str(tmp_path / "s"), attributes=[ref])
        assert spool.attributes() == [ref]
        assert stats.attributes_exported == 1

    def test_index_is_persisted(self, db, tmp_path):
        from repro.storage.sorted_sets import SpoolDirectory

        export_database(db, str(tmp_path / "s"))
        reopened = SpoolDirectory.open(tmp_path / "s")
        assert AttributeRef("t", "num") in reopened

    def test_external_sort_path_same_output(self, db, tmp_path):
        small, _ = export_database(
            db, str(tmp_path / "small"), max_items_in_memory=1
        )
        large, _ = export_database(db, str(tmp_path / "large"))
        for ref in large.attributes():
            assert small.get(ref).values() == large.get(ref).values()


class TestSqlEnginePath:
    def test_sql_extraction_matches_direct(self, db, tmp_path):
        direct, _ = export_database(db, str(tmp_path / "direct"))
        via_sql, _ = export_database(
            db, str(tmp_path / "sql"), use_sql_engine=True
        )
        assert direct.attributes() == via_sql.attributes()
        for ref in direct.attributes():
            assert direct.get(ref).values() == via_sql.get(ref).values()

    def test_per_attribute_counts(self, db, tmp_path):
        _, stats = export_database(db, str(tmp_path / "s"))
        assert stats.per_attribute_counts["t.num"] == 2
        assert stats.per_attribute_counts["t.txt"] == 2

"""Tests for TO_CHAR-style rendering and the escaped line format."""

import pytest

from repro.errors import SpoolError
from repro.storage.codec import (
    escape_line,
    render_distinct_sorted,
    render_value,
    unescape_line,
)


class TestRenderValue:
    def test_strings_pass_through(self):
        assert render_value("abc") == "abc"

    def test_ints(self):
        assert render_value(144) == "144"
        assert render_value(-7) == "-7"

    def test_integral_float_drops_fraction(self):
        assert render_value(1.0) == "1"
        assert render_value(-3.0) == "-3"

    def test_fractional_float(self):
        assert render_value(1.5) == "1.5"

    def test_float_round_trip_shortest(self):
        assert render_value(0.1) == "0.1"

    def test_nan_and_inf(self):
        assert render_value(float("nan")) == "nan"
        assert render_value(float("inf")) == "inf"

    def test_to_char_cross_type_equality(self):
        # The heart of the paper's value semantics: 144 == "144".
        assert render_value(144) == render_value("144")

    def test_bytes_as_hex(self):
        assert render_value(b"\x01\xff") == "01ff"

    def test_none_rejected(self):
        with pytest.raises(SpoolError):
            render_value(None)

    def test_bool_rejected(self):
        with pytest.raises(SpoolError):
            render_value(True)

    def test_unknown_type_rejected(self):
        with pytest.raises(SpoolError):
            render_value(object())


class TestEscaping:
    @pytest.mark.parametrize(
        "text",
        ["plain", "", "tab\tok", "new\nline", "carriage\rreturn",
         "back\\slash", "\\n literal", "mix\\\n\r\\r"],
    )
    def test_roundtrip(self, text):
        assert unescape_line(escape_line(text)) == text

    def test_escaped_has_no_newlines(self):
        assert "\n" not in escape_line("a\nb")
        assert "\r" not in escape_line("a\rb")

    def test_unescape_rejects_dangling(self):
        with pytest.raises(SpoolError):
            unescape_line("abc\\")

    def test_unescape_rejects_unknown_escape(self):
        with pytest.raises(SpoolError):
            unescape_line("ab\\x")


class TestRenderDistinctSorted:
    def test_dedupes_and_sorts(self):
        out = render_distinct_sorted([3, 1, 2, 1, "1"])
        # "1" and 1 collapse; lexicographic order.
        assert out == ["1", "2", "3"]

    def test_lexicographic_not_numeric(self):
        out = render_distinct_sorted([9, 10, 100])
        assert out == ["10", "100", "9"]

    def test_empty(self):
        assert render_distinct_sorted([]) == []

"""Tests for TO_CHAR-style rendering and the escaped line format."""

import pytest

from repro.errors import SpoolError
from repro.storage.codec import (
    decode_block,
    encode_block,
    escape_line,
    render_distinct_sorted,
    render_value,
    unescape_line,
)


class TestRenderValue:
    def test_strings_pass_through(self):
        assert render_value("abc") == "abc"

    def test_ints(self):
        assert render_value(144) == "144"
        assert render_value(-7) == "-7"

    def test_integral_float_drops_fraction(self):
        assert render_value(1.0) == "1"
        assert render_value(-3.0) == "-3"

    def test_fractional_float(self):
        assert render_value(1.5) == "1.5"

    def test_float_round_trip_shortest(self):
        assert render_value(0.1) == "0.1"

    def test_nan_and_inf(self):
        assert render_value(float("nan")) == "nan"
        assert render_value(float("inf")) == "inf"

    def test_to_char_cross_type_equality(self):
        # The heart of the paper's value semantics: 144 == "144".
        assert render_value(144) == render_value("144")

    def test_bytes_as_hex(self):
        assert render_value(b"\x01\xff") == "01ff"

    def test_none_rejected(self):
        with pytest.raises(SpoolError):
            render_value(None)

    def test_bool_rejected(self):
        with pytest.raises(SpoolError):
            render_value(True)

    def test_unknown_type_rejected(self):
        with pytest.raises(SpoolError):
            render_value(object())


class TestEscaping:
    @pytest.mark.parametrize(
        "text",
        ["plain", "", "tab\tok", "new\nline", "carriage\rreturn",
         "back\\slash", "\\n literal", "mix\\\n\r\\r"],
    )
    def test_roundtrip(self, text):
        assert unescape_line(escape_line(text)) == text

    def test_escaped_has_no_newlines(self):
        assert "\n" not in escape_line("a\nb")
        assert "\r" not in escape_line("a\rb")

    def test_unescape_rejects_dangling(self):
        with pytest.raises(SpoolError):
            unescape_line("abc\\")

    def test_unescape_rejects_unknown_escape(self):
        with pytest.raises(SpoolError):
            unescape_line("ab\\x")


class TestBlockCodec:
    @pytest.mark.parametrize(
        "values",
        [
            [],
            [""],
            ["plain"],
            ["a", "b", "c"],
            ["new\nline", "back\\slash", "carriage\rreturn"],
            ["nul\x00byte", "tab\tok", "ünïcode", "0"],
            ["", "", ""],  # repeated empties survive the count framing
        ],
    )
    def test_roundtrip(self, values):
        assert decode_block(encode_block(values), len(values)) == values

    def test_payload_of_plain_values_is_join(self):
        # The fast path: no escapes, decode is one split, byte-transparent.
        assert encode_block(["a", "b"]) == b"a\nb"

    def test_escaped_values_have_no_raw_separators(self):
        payload = encode_block(["x\ny", "z"])
        assert payload.count(b"\n") == 1  # only the separator survives

    def test_count_mismatch_rejected(self):
        payload = encode_block(["a", "b"])
        with pytest.raises(SpoolError, match="promises 3 values"):
            decode_block(payload, 3)

    def test_zero_count_with_payload_rejected(self):
        with pytest.raises(SpoolError, match="zero-value block"):
            decode_block(b"junk", 0)

    def test_zero_count_empty_payload(self):
        assert decode_block(b"", 0) == []

    def test_large_block_roundtrip(self):
        values = [f"value-{i:05d}" for i in range(5000)]
        assert decode_block(encode_block(values), 5000) == values


class TestRenderDistinctSorted:
    def test_dedupes_and_sorts(self):
        out = render_distinct_sorted([3, 1, 2, 1, "1"])
        # "1" and 1 collapse; lexicographic order.
        assert out == ["1", "2", "3"]

    def test_lexicographic_not_numeric(self):
        out = render_distinct_sorted([9, 10, 100])
        assert out == ["10", "100", "9"]

    def test_empty(self):
        assert render_distinct_sorted([]) == []

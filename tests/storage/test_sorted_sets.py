"""Tests for sorted value files and the spool directory."""

import pytest

from repro.db.schema import AttributeRef
from repro.errors import SpoolError
from repro.storage.sorted_sets import SpoolDirectory


@pytest.fixture()
def spool(tmp_path) -> SpoolDirectory:
    return SpoolDirectory.create(tmp_path / "spool")


A = AttributeRef("t", "a")
B = AttributeRef("t", "b")


class TestAddValues:
    def test_add_and_read(self, spool):
        svf = spool.add_values(A, ["a", "b", "c"])
        assert svf.count == 3
        assert svf.min_value == "a"
        assert svf.max_value == "c"
        assert svf.values() == ["a", "b", "c"]

    def test_empty_attribute(self, spool):
        svf = spool.add_values(A, [])
        assert svf.is_empty
        assert svf.min_value is None

    def test_rejects_unsorted(self, spool):
        with pytest.raises(SpoolError, match="strictly ascending"):
            spool.add_values(A, ["b", "a"])

    def test_rejects_duplicates(self, spool):
        with pytest.raises(SpoolError, match="strictly ascending"):
            spool.add_values(A, ["a", "a"])

    def test_rejects_double_spool(self, spool):
        spool.add_values(A, ["a"])
        with pytest.raises(SpoolError, match="already spooled"):
            spool.add_values(A, ["b"])

    def test_values_with_special_characters(self, spool):
        values = sorted(["x\ny", "plain", "back\\slash"])
        spool.add_values(A, values)
        assert spool.get(A).values() == values

    def test_unsafe_names_sanitised(self, spool):
        weird = AttributeRef("ta ble", "col/umn")
        spool.add_values(weird, ["v"])
        assert spool.get(weird).values() == ["v"]

    def test_name_collisions_get_suffixes(self, spool):
        # Two attributes that sanitise to the same file name must coexist.
        first = AttributeRef("t", "a/b")
        second = AttributeRef("t", "a_b")
        spool.add_values(first, ["1"])
        spool.add_values(second, ["2"])
        assert spool.get(first).values() == ["1"]
        assert spool.get(second).values() == ["2"]


class TestLookups:
    def test_contains_and_len(self, spool):
        assert A not in spool
        spool.add_values(A, ["a"])
        assert A in spool
        assert len(spool) == 1

    def test_get_missing(self, spool):
        with pytest.raises(SpoolError, match="not in the spool"):
            spool.get(A)

    def test_attributes_sorted(self, spool):
        spool.add_values(B, ["b"])
        spool.add_values(A, ["a"])
        assert spool.attributes() == [A, B]

    def test_total_values(self, spool):
        spool.add_values(A, ["a", "b"])
        spool.add_values(B, ["c"])
        assert spool.total_values() == 3

    def test_discard(self, spool):
        spool.add_values(A, ["a"])
        spool.discard(A)
        assert A not in spool
        spool.discard(A)  # idempotent


class TestPersistence:
    def test_save_and_reopen(self, spool, tmp_path):
        spool.add_values(A, ["a", "b"])
        spool.add_values(B, ["z"])
        spool.save_index()
        reopened = SpoolDirectory.open(spool.root)
        assert reopened.attributes() == [A, B]
        assert reopened.get(A).count == 2
        assert reopened.get(A).values() == ["a", "b"]
        assert reopened.get(B).max_value == "z"

    def test_open_requires_index(self, tmp_path):
        (tmp_path / "d").mkdir()
        with pytest.raises(SpoolError, match="not a spool directory"):
            SpoolDirectory.open(tmp_path / "d")

    def test_open_detects_missing_file(self, spool):
        spool.add_values(A, ["a"])
        spool.save_index()
        import os

        os.unlink(spool.get(A).path)
        with pytest.raises(SpoolError, match="missing file"):
            SpoolDirectory.open(spool.root)


class TestCursorIntegration:
    def test_open_cursor_counts(self, spool):
        from repro.storage.cursors import IOStats

        spool.add_values(A, ["a", "b"])
        stats = IOStats()
        cursor = spool.open_cursor(A, stats)
        while cursor.has_next():
            cursor.next_value()
        cursor.close()
        assert stats.items_read == 2
        assert stats.reads_per_attribute == {"t.a": 2}

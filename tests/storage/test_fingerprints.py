"""Property tests for the per-attribute fingerprint map.

The map is the incremental pipeline's change detector, so its two defining
properties get pinned directly:

* **content-only** — a column's fingerprint is a pure function of its value
  multiset and profiled shape: renames, row reorderings and the same values
  living in a differently-named column all fingerprint identically, while
  any multiset change (append, update, delete) moves the digest;
* **derivation** — the whole-catalog ``catalog_fingerprint`` is composed
  from the *same* per-attribute entries plus identity, and stays
  byte-identical to the pre-per-column implementation (vendored below), so
  every existing cache entry keeps hitting.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from seeded_dbs import build_random_db

from repro.db import Column, Database, DataType, TableSchema
from repro.db.schema import AttributeRef
from repro.db.stats import collect_column_stats
from repro.storage.spool_cache import (
    attribute_fingerprint,
    attribute_fingerprints,
    catalog_fingerprint,
)


def _single_column_db(name, table, column, values, dtype=DataType.VARCHAR):
    db = Database(name)
    t = db.create_table(TableSchema(table, [Column(column, dtype)]))
    for value in values:
        t.insert({column: value})
    return db


def _fingerprint_of(db, table, column):
    stats = collect_column_stats(db)
    return attribute_fingerprint(stats[AttributeRef(table, column)])


VALUES = ["a", "b", "ab", "", "x\ny", "nul\x00byte", "b"]


class TestContentOnly:
    def test_rename_keeps_the_fingerprint_moves_the_key(self):
        original = _single_column_db("d", "t", "old", VALUES)
        renamed = _single_column_db("d", "t", "new", VALUES)
        assert _fingerprint_of(original, "t", "old") == _fingerprint_of(
            renamed, "t", "new"
        )
        before = attribute_fingerprints(collect_column_stats(original))
        after = attribute_fingerprints(collect_column_stats(renamed))
        assert set(before) == {AttributeRef("t", "old")}
        assert set(after) == {AttributeRef("t", "new")}
        assert list(before.values()) == list(after.values())

    def test_row_reordering_is_invisible(self):
        forward = _single_column_db("d", "t", "c", VALUES)
        backward = _single_column_db("d", "t", "c", list(reversed(VALUES)))
        assert _fingerprint_of(forward, "t", "c") == _fingerprint_of(
            backward, "t", "c"
        )

    def test_same_values_in_a_different_table_and_column_agree(self):
        here = _single_column_db("d", "t0", "c0", VALUES)
        there = _single_column_db("other", "t9", "z", VALUES)
        assert _fingerprint_of(here, "t0", "c0") == _fingerprint_of(
            there, "t9", "z"
        )

    @pytest.mark.parametrize(
        "mutation",
        [
            ("append", VALUES + ["extra"]),
            ("update", ["CHANGED"] + VALUES[1:]),
            ("delete", VALUES[1:]),
            ("null-out", [None] + VALUES[1:]),
            ("duplicate", VALUES + [VALUES[0]]),
        ],
    )
    def test_any_multiset_change_moves_the_digest(self, mutation):
        label, mutated = mutation
        base = _fingerprint_of(
            _single_column_db("d", "t", "c", VALUES), "t", "c"
        )
        changed = _fingerprint_of(
            _single_column_db("d", "t", "c", mutated), "t", "c"
        )
        assert base != changed, f"{label} mutation went undetected"

    def test_equal_length_mid_range_swap_is_caught_by_the_checksum(self):
        """The edit that counts and extrema alone cannot see."""
        base = ["aa", "mm", "zz"]
        swapped = ["aa", "nn", "zz"]  # same count, extrema, lengths
        assert _fingerprint_of(
            _single_column_db("d", "t", "c", base), "t", "c"
        ) != _fingerprint_of(
            _single_column_db("d", "t", "c", swapped), "t", "c"
        )

    def test_dtype_is_part_of_the_content(self):
        as_int = _single_column_db(
            "d", "t", "c", [1, 2, 3], dtype=DataType.INTEGER
        )
        as_str = _single_column_db(
            "d", "t", "c", ["1", "2", "3"], dtype=DataType.VARCHAR
        )
        # Rendered values collide (TO_CHAR semantics) but the declared
        # type differs, and type shapes validator candidates.
        assert _fingerprint_of(as_int, "t", "c") != _fingerprint_of(
            as_str, "t", "c"
        )


def _legacy_catalog_fingerprint(database_name, column_stats):
    """The pre-per-column implementation, vendored verbatim as the oracle."""
    payload = {
        "database": database_name,
        "attributes": [
            {
                "table": ref.table,
                "column": ref.column,
                "dtype": st.dtype.value,
                "rows": st.row_count,
                "nulls": st.null_count,
                "distinct": st.distinct_count,
                "min": st.min_value,
                "max": st.max_value,
                "min_length": st.min_length,
                "max_length": st.max_length,
                "checksum": st.value_checksum,
            }
            for ref, st in sorted(column_stats.items())
        ],
    }
    canonical = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=False
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class TestDerivedCatalogHash:
    @pytest.mark.parametrize("seed", range(6))
    def test_byte_identical_to_legacy_implementation(self, seed):
        """Existing cache entries must keep hitting across the refactor."""
        db = build_random_db(seed)
        stats = collect_column_stats(db)
        assert catalog_fingerprint(db.name, stats) == (
            _legacy_catalog_fingerprint(db.name, stats)
        )

    def test_stable_across_repeated_profiling(self):
        db = build_random_db(2)
        first = catalog_fingerprint(db.name, collect_column_stats(db))
        second = catalog_fingerprint(db.name, collect_column_stats(db))
        assert first == second

    def test_catalog_hash_moves_exactly_with_the_map_or_identity(self):
        values = list(VALUES)
        base_db = _single_column_db("d", "t", "c", values)
        base_stats = collect_column_stats(base_db)
        base_map = attribute_fingerprints(base_stats)
        base_hash = catalog_fingerprint("d", base_stats)
        # Content change: map value moves, catalog hash moves.
        edited = _single_column_db("d", "t", "c", values + ["tail"])
        edited_stats = collect_column_stats(edited)
        assert attribute_fingerprints(edited_stats) != base_map
        assert catalog_fingerprint("d", edited_stats) != base_hash
        # Rename: map *keys* move while values stay — identity is the
        # catalog hash's business, so it moves too.
        renamed = _single_column_db("d", "t", "c2", values)
        renamed_stats = collect_column_stats(renamed)
        assert list(
            attribute_fingerprints(renamed_stats).values()
        ) == list(base_map.values())
        assert catalog_fingerprint("d", renamed_stats) != base_hash
        # Database name is catalog identity as well.
        assert catalog_fingerprint("e", base_stats) != base_hash

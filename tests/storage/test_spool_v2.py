"""Tests for spool format v2: block files, format sniffing, parallel export."""

import json
import threading

import pytest

from repro.core.brute_force import BruteForceValidator
from repro.core.candidates import Candidate
from repro.db.database import Database
from repro.db.schema import AttributeRef, Column, TableSchema
from repro.db.types import DataType
from repro.errors import SpoolError
from repro.storage.blockio import (
    MAGIC,
    BlockFileWriter,
    sniff_block_file,
)
from repro.storage.codec import escape_line
from repro.storage.cursors import BlockFileValueCursor, IOStats
from repro.storage.exporter import export_database
from repro.storage.sorted_sets import (
    FORMAT_BINARY,
    FORMAT_TEXT,
    SpoolDirectory,
)

A = AttributeRef("t", "a")
B = AttributeRef("t", "b")

AWKWARD = sorted(["", "a\nb", "a\\nb", "back\\slash", "nul\x00byte", "z\r"])


# --------------------------------------------------------------- block files
class TestBlockFileRoundTrip:
    @pytest.mark.parametrize("block_size", [1, 2, 3, 1000])
    def test_values_survive(self, tmp_path, block_size):
        path = str(tmp_path / "v.valsb")
        values = [f"v{i:03d}" for i in range(17)]
        with BlockFileWriter(path, block_size=block_size) as writer:
            for value in values:
                writer.write(value)
        cursor = BlockFileValueCursor(path)
        out = []
        while cursor.has_next():
            out.append(cursor.next_value())
        cursor.close()
        assert out == values

    @pytest.mark.parametrize("block_size", [1, 2, 5])
    def test_awkward_values(self, tmp_path, block_size):
        path = str(tmp_path / "v.valsb")
        with BlockFileWriter(path, block_size=block_size) as writer:
            for value in AWKWARD:
                writer.write(value)
        cursor = BlockFileValueCursor(path)
        assert cursor.read_batch(100) == AWKWARD
        cursor.close()

    def test_empty_file(self, tmp_path):
        path = str(tmp_path / "v.valsb")
        with BlockFileWriter(path) as writer:
            pass
        assert writer.count == 0 and writer.blocks == []
        cursor = BlockFileValueCursor(path)
        assert not cursor.has_next()
        with pytest.raises(SpoolError, match="read past end"):
            cursor.next_value()
        cursor.close()

    def test_block_metadata(self, tmp_path):
        path = str(tmp_path / "v.valsb")
        with BlockFileWriter(path, block_size=2) as writer:
            for value in ["a", "b", "c", "d", "e"]:
                writer.write(value)
        assert [b.count for b in writer.blocks] == [2, 2, 1]
        assert [(b.min_value, b.max_value) for b in writer.blocks] == [
            ("a", "b"), ("c", "d"), ("e", "e"),
        ]
        assert writer.count == 5
        assert writer.min_value == "a"
        assert writer.max_value == "e"

    def test_batches_straddle_block_boundaries(self, tmp_path):
        path = str(tmp_path / "v.valsb")
        values = [f"{i:02d}" for i in range(20)]
        with BlockFileWriter(path, block_size=3) as writer:
            for value in values:
                writer.write(value)
        cursor = BlockFileValueCursor(path)
        # 7-value batches over 3-value blocks: every read crosses a boundary.
        out = []
        while True:
            batch = cursor.read_batch(7)
            if not batch:
                break
            assert len(batch) == 7 or len(batch) == len(values) - len(out)
            out.extend(batch)
        cursor.close()
        assert out == values

    def test_peek_does_not_consume_across_blocks(self, tmp_path):
        path = str(tmp_path / "v.valsb")
        with BlockFileWriter(path, block_size=2) as writer:
            for value in ["a", "b", "c", "d", "e"]:
                writer.write(value)
        stats = IOStats()
        cursor = BlockFileValueCursor(path, stats)
        assert cursor.peek_batch(5) == ["a", "b", "c", "d", "e"]
        assert stats.items_read == 0  # peeking is never charged
        cursor.advance(3)
        assert stats.items_read == 3
        assert cursor.read_batch(10) == ["d", "e"]
        assert stats.items_read == 5
        cursor.close()

    def test_writer_rejects_bad_block_size(self, tmp_path):
        with pytest.raises(SpoolError, match="block_size"):
            BlockFileWriter(str(tmp_path / "v.valsb"), block_size=0)

    def test_write_after_close(self, tmp_path):
        writer = BlockFileWriter(str(tmp_path / "v.valsb"))
        writer.close()
        with pytest.raises(SpoolError, match="after close"):
            writer.write("x")


class TestBlockFileCorruption:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "v.valsb"
        path.write_bytes(b"not a block file")
        with pytest.raises(SpoolError, match="bad magic"):
            BlockFileValueCursor(str(path))
        assert not sniff_block_file(str(path))

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "v.valsb"
        path.write_bytes(MAGIC + b"\x01\x02")
        cursor = BlockFileValueCursor(str(path))
        with pytest.raises(SpoolError, match="truncated block header"):
            cursor.has_next()
        cursor.close()

    def test_truncated_payload(self, tmp_path):
        path = str(tmp_path / "v.valsb")
        with BlockFileWriter(path, block_size=10) as writer:
            for value in ["aaa", "bbb"]:
                writer.write(value)
        data = open(path, "rb").read()
        trimmed = tmp_path / "trimmed.valsb"
        trimmed.write_bytes(data[:-2])
        cursor = BlockFileValueCursor(str(trimmed))
        with pytest.raises(SpoolError, match="truncated block"):
            cursor.has_next()
        cursor.close()

    def test_sniff_detects_v2(self, tmp_path):
        path = str(tmp_path / "v.valsb")
        with BlockFileWriter(path) as writer:
            writer.write("x")
        assert sniff_block_file(path)
        text = tmp_path / "v.vals"
        text.write_text("x\n")
        assert not sniff_block_file(str(text))


# ------------------------------------------------------------ spool directory
class TestBinarySpoolDirectory:
    def test_round_trip_and_reopen(self, tmp_path):
        spool = SpoolDirectory.create(
            tmp_path / "s", format=FORMAT_BINARY, block_size=2
        )
        spool.add_values(A, AWKWARD)
        spool.add_values(B, [])
        spool.save_index()
        reopened = SpoolDirectory.open(tmp_path / "s")
        assert reopened.format == FORMAT_BINARY
        assert reopened.block_size == 2
        assert reopened.get(A).values() == AWKWARD
        assert reopened.get(B).values() == []
        assert reopened.get(A).format == FORMAT_BINARY

    def test_index_carries_version_and_blocks(self, tmp_path):
        spool = SpoolDirectory.create(
            tmp_path / "s", format=FORMAT_BINARY, block_size=2
        )
        spool.add_values(A, ["a", "b", "c"])
        spool.save_index()
        doc = json.loads((tmp_path / "s" / "index.json").read_text())
        assert doc["version"] == 2
        assert doc["format"] == "binary"
        assert doc["block_size"] == 2
        (entry,) = doc["attributes"]
        assert entry["file"].endswith(".valsb")
        assert entry["blocks"] == [
            {"count": 2, "min": "a", "max": "b"},
            {"count": 1, "min": "c", "max": "c"},
        ]

    def test_text_v2_index_has_version_but_no_blocks(self, tmp_path):
        spool = SpoolDirectory.create(tmp_path / "s", format=FORMAT_TEXT)
        spool.add_values(A, ["a"])
        spool.save_index()
        doc = json.loads((tmp_path / "s" / "index.json").read_text())
        assert doc["version"] == 2
        assert doc["format"] == "text"
        assert "blocks" not in doc["attributes"][0]

    def test_rejects_unknown_format(self, tmp_path):
        with pytest.raises(SpoolError, match="unknown spool format"):
            SpoolDirectory.create(tmp_path / "s", format="parquet")

    def test_binary_rejects_unsorted(self, tmp_path):
        spool = SpoolDirectory.create(tmp_path / "s", format=FORMAT_BINARY)
        with pytest.raises(SpoolError, match="strictly ascending"):
            spool.add_values(A, ["b", "a"])
        # The failed write never leaks a half-written file or a reservation.
        assert A not in spool
        spool.add_values(A, ["a", "b"])
        assert spool.get(A).values() == ["a", "b"]

    def test_cursor_accounting_matches_text(self, tmp_path):
        values = [f"{i:02d}" for i in range(10)]
        per_format = {}
        for fmt in (FORMAT_TEXT, FORMAT_BINARY):
            spool = SpoolDirectory.create(
                tmp_path / fmt, format=fmt, block_size=3
            )
            spool.add_values(A, values)
            stats = IOStats()
            cursor = spool.open_cursor(A, stats)
            cursor.read_batch(4)
            cursor.next_value()
            cursor.close()
            per_format[fmt] = (
                stats.items_read,
                stats.files_opened,
                stats.reads_per_attribute,
            )
        assert per_format[FORMAT_TEXT] == per_format[FORMAT_BINARY] == (
            5, 1, {"t.a": 5},
        )


class TestV1BackwardCompat:
    def _write_v1_directory(self, root):
        """Hand-build a spool directory exactly as the v1 code wrote it."""
        root.mkdir(parents=True)
        values = {"a": ["1", "5", "x\ny"], "b": ["1", "5", "9", "x\ny"]}
        entries = []
        for column, vals in values.items():
            file_name = f"t__{column}.vals"
            with open(root / file_name, "w", encoding="utf-8") as fh:
                for value in vals:
                    fh.write(escape_line(value) + "\n")
            entries.append(
                {
                    "table": "t",
                    "column": column,
                    "file": file_name,
                    "count": len(vals),
                    "min": vals[0],
                    "max": vals[-1],
                    "dtype": "VARCHAR",
                }
            )
        # v1 index: no "version", no "format", no "block_size".
        (root / "index.json").write_text(
            json.dumps({"attributes": entries})
        )
        return values

    def test_v1_directory_opens_as_text(self, tmp_path):
        values = self._write_v1_directory(tmp_path / "v1")
        spool = SpoolDirectory.open(tmp_path / "v1")
        assert spool.format == FORMAT_TEXT
        assert spool.get(A).values() == values["a"]
        assert spool.get(B).values() == values["b"]

    def test_v1_directory_validates(self, tmp_path):
        self._write_v1_directory(tmp_path / "v1")
        spool = SpoolDirectory.open(tmp_path / "v1")
        result = BruteForceValidator(spool).validate(
            [Candidate(A, B), Candidate(B, A)]
        )
        assert result.decisions[Candidate(A, B)] is True
        assert result.decisions[Candidate(B, A)] is False

    def test_future_version_rejected(self, tmp_path):
        root = tmp_path / "v9"
        root.mkdir()
        (root / "index.json").write_text(
            json.dumps({"version": 9, "attributes": []})
        )
        with pytest.raises(SpoolError, match="version 9"):
            SpoolDirectory.open(root)

    def test_unknown_index_format_rejected(self, tmp_path):
        root = tmp_path / "weird"
        root.mkdir()
        (root / "index.json").write_text(
            json.dumps({"version": 2, "format": "parquet", "attributes": []})
        )
        with pytest.raises(SpoolError, match="parquet"):
            SpoolDirectory.open(root)


# ------------------------------------------------------------ parallel export
def _sample_db(columns=8, rows=120) -> Database:
    db = Database("par")
    cols = [Column(f"c{i}", DataType.INTEGER) for i in range(columns)]
    table = db.create_table(TableSchema("t", cols))
    for r in range(rows):
        table.insert({f"c{i}": (r * (i + 1)) % 97 for i in range(columns)})
    return db


class TestParallelExport:
    @pytest.mark.parametrize("spool_format", [FORMAT_TEXT, FORMAT_BINARY])
    def test_workers_match_sequential(self, tmp_path, spool_format):
        db = _sample_db()
        seq, seq_stats = export_database(
            db, str(tmp_path / "seq"), spool_format=spool_format
        )
        par, par_stats = export_database(
            db, str(tmp_path / "par"), spool_format=spool_format, workers=4
        )
        assert seq.attributes() == par.attributes()
        for ref in seq.attributes():
            assert seq.get(ref).values() == par.get(ref).values()
        assert seq_stats.per_attribute_counts == par_stats.per_attribute_counts
        assert seq_stats.values_scanned == par_stats.values_scanned
        assert seq_stats.values_written == par_stats.values_written

    def test_parallel_index_is_deterministic(self, tmp_path):
        db = _sample_db(columns=6, rows=40)
        docs = []
        for run in range(2):
            export_database(
                db, str(tmp_path / f"run{run}"), workers=3,
            )
            docs.append(
                json.loads((tmp_path / f"run{run}" / "index.json").read_text())
            )
        assert docs[0] == docs[1]

    def test_workers_validation(self, tmp_path):
        with pytest.raises(SpoolError, match="workers"):
            export_database(_sample_db(2, 4), str(tmp_path / "s"), workers=0)

    def test_concurrent_add_values_thread_safety(self, tmp_path):
        """Direct hammering of the registry lock from many threads."""
        spool = SpoolDirectory.create(tmp_path / "s", format=FORMAT_BINARY)
        errors = []

        def add(i):
            try:
                spool.add_values(
                    AttributeRef("t", f"c{i}"),
                    [f"{i}-{j:02d}" for j in range(50)],
                )
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [threading.Thread(target=add, args=(i,)) for i in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(spool) == 16
        names = {spool.get(AttributeRef("t", f"c{i}")).path for i in range(16)}
        assert len(names) == 16  # no file-name collisions under concurrency

"""Unit tests for spool-cache partial reuse: ``find_partial`` and ``adopt``.

A catalog-fingerprint miss no longer has to mean a full re-export: a
previous entry over the *same database and spool configuration* whose
stamped per-attribute fingerprint map still matches some needed columns
can donate those columns' value files.  These tests pin the donor search
(who qualifies, who wins) and the adoption mechanics (hardlink-or-copy
into staging, vanished donor files skipped, never mutating the donor).
"""

from __future__ import annotations

import os
from pathlib import Path

from seeded_dbs import build_db

from repro.db.schema import AttributeRef
from repro.db.stats import collect_column_stats
from repro.storage.exporter import export_database
from repro.storage.sorted_sets import SpoolDirectory
from repro.storage.spool_cache import (
    SpoolCache,
    attribute_fingerprints,
    catalog_fingerprint,
)


def _publish_entry(cache, db, *, stamped=True, spool_format="binary"):
    """Export ``db`` into a fresh staging dir and publish it as an entry."""
    stats = collect_column_stats(db)
    fingerprint = catalog_fingerprint(db.name, stats)
    spool, _ = export_database(
        db, str(cache.prepare(fingerprint)), spool_format=spool_format
    )
    return (
        cache.publish(
            fingerprint,
            spool,
            database=db.name,
            fingerprints=attribute_fingerprints(stats) if stamped else None,
        ),
        stats,
        fingerprint,
    )


def _shift_column(db, table, column, delta=1):
    """Change one integer column's content in place.

    A plain shift (no wrap-around) so the value *multiset* always moves —
    ``t1.c0`` holds exactly 0..11, which a modular shift would merely
    permute, leaving the content fingerprint correctly unchanged.
    """
    values = db.table(table).column_values(column)
    values[:] = [None if v is None else v + delta for v in values]


def _mutated(db_seed=0):
    """The ``build_db`` database with one column's content changed."""
    db = build_db(db_seed)
    _shift_column(db, "t1", "c0")
    return db


class TestFindPartial:
    def test_miss_with_stamped_donor_lends_unchanged_attributes(self, tmp_path):
        cache = SpoolCache(tmp_path)
        _publish_entry(cache, build_db(0))
        changed_db = _mutated()
        stats = collect_column_stats(changed_db)
        fingerprints = attribute_fingerprints(stats)
        needed = sorted(fingerprints)
        found = cache.find_partial(
            catalog_fingerprint(changed_db.name, stats),
            changed_db.name,
            fingerprints,
            needed,
        )
        assert found is not None
        donor, reusable = found
        assert AttributeRef("t1", "c0") not in reusable
        assert AttributeRef("t0", "id") in reusable
        assert len(reusable) == len(needed) - 1

    def test_empty_cache_and_unstamped_entries_yield_none(self, tmp_path):
        cache = SpoolCache(tmp_path)
        changed_db = _mutated()
        stats = collect_column_stats(changed_db)
        fingerprints = attribute_fingerprints(stats)
        args = (
            catalog_fingerprint(changed_db.name, stats),
            changed_db.name,
            fingerprints,
            sorted(fingerprints),
        )
        assert cache.find_partial(*args) is None
        # A pre-refactor entry (no stamped map) can never donate.
        _publish_entry(cache, build_db(0), stamped=False)
        assert cache.find_partial(*args) is None

    def test_other_databases_and_other_formats_never_donate(self, tmp_path):
        cache = SpoolCache(tmp_path)
        # Same content, different database name: not a donor.
        other = build_db(0)
        other.name = "elsewhere"
        _publish_entry(cache, other)
        # Same database, different spool format: wrong entry family.
        _publish_entry(cache, build_db(0), spool_format="text")
        changed_db = _mutated()
        stats = collect_column_stats(changed_db)
        fingerprints = attribute_fingerprints(stats)
        assert (
            cache.find_partial(
                catalog_fingerprint(changed_db.name, stats),
                changed_db.name,
                fingerprints,
                sorted(fingerprints),
            )
            is None
        )

    def test_best_donor_wins_by_reusable_count(self, tmp_path):
        cache = SpoolCache(tmp_path)
        # Donor A: two columns already diverged from the target's content.
        stale = build_db(0)
        _shift_column(stale, "t0", "c0", delta=5)
        stale_c1 = stale.table("t0").column_values("c1")
        stale_c1[:] = [None if v is None else v + "!" for v in stale_c1]
        _publish_entry(cache, stale)
        # Donor B: only the column the target will re-export diverges.
        _publish_entry(cache, build_db(0))
        changed_db = _mutated()
        stats = collect_column_stats(changed_db)
        fingerprints = attribute_fingerprints(stats)
        needed = sorted(fingerprints)
        donor, reusable = cache.find_partial(
            catalog_fingerprint(changed_db.name, stats),
            changed_db.name,
            fingerprints,
            needed,
        )
        assert len(reusable) == len(needed) - 1  # donor B's full offer
        stamped = donor.attribute_fingerprints
        assert stamped["t0.c0"] == fingerprints[AttributeRef("t0", "c0")]


class TestAdopt:
    def _donor_and_staging(self, tmp_path):
        cache = SpoolCache(tmp_path / "cache")
        donor, stats, _ = _publish_entry(cache, build_db(0))
        staging = SpoolDirectory.create(
            tmp_path / "staging", format="binary"
        )
        return donor, staging

    def test_adopted_files_read_back_identically(self, tmp_path):
        donor, staging = self._donor_and_staging(tmp_path)
        refs = [AttributeRef("t0", "id"), AttributeRef("t1", "c0")]
        adopted = SpoolCache.adopt(staging, donor, refs)
        assert adopted == refs
        staging.save_index()
        reopened = SpoolDirectory.open(staging.root)
        for ref in refs:
            assert reopened.get(ref).values() == donor.get(ref).values()
        # Hardlink or copy, the donor's own file is untouched either way.
        for ref in refs:
            assert Path(donor.get(ref).path).exists()

    def test_adoption_is_a_link_not_a_second_copy_when_possible(self, tmp_path):
        donor, staging = self._donor_and_staging(tmp_path)
        ref = AttributeRef("t0", "id")
        SpoolCache.adopt(staging, donor, [ref])
        donor_stat = os.stat(donor.get(ref).path)
        staged_stat = os.stat(staging.get(ref).path)
        # Same filesystem here, so the hardlink path must have engaged.
        assert donor_stat.st_ino == staged_stat.st_ino
        assert donor_stat.st_nlink >= 2

    def test_vanished_donor_file_is_skipped_not_fatal(self, tmp_path):
        donor, staging = self._donor_and_staging(tmp_path)
        gone = AttributeRef("t0", "id")
        kept = AttributeRef("t1", "c0")
        os.unlink(donor.get(gone).path)
        adopted = SpoolCache.adopt(staging, donor, [gone, kept])
        assert adopted == [kept]
        # The skipped ref's name reservation was released: a later export
        # of that attribute registers cleanly.
        assert gone not in staging
        assert kept in staging

"""Tests for value cursors, batched reads, and I/O accounting."""

import pytest

from repro.errors import SpoolError
from repro.storage.codec import escape_line
from repro.storage.cursors import (
    BatchReader,
    CountingCursor,
    FileValueCursor,
    IOStats,
    MemoryValueCursor,
)


def write_value_file(path, values):
    with open(path, "w", encoding="utf-8") as fh:
        for value in values:
            fh.write(escape_line(value) + "\n")
    return str(path)


class TestIOStats:
    def test_open_close_tracking(self):
        stats = IOStats()
        stats.record_open()
        stats.record_open()
        assert stats.files_opened == 2
        assert stats.open_files == 2
        assert stats.peak_open_files == 2
        stats.record_close()
        stats.record_open()
        assert stats.open_files == 2
        assert stats.peak_open_files == 2  # never exceeded two concurrently

    def test_reads_per_attribute(self):
        stats = IOStats()
        stats.record_read("a")
        stats.record_read("a")
        stats.record_read("b")
        assert stats.items_read == 3
        assert stats.reads_per_attribute == {"a": 2, "b": 1}

    def test_merge(self):
        a, b = IOStats(), IOStats()
        a.record_open()
        a.record_read("x")
        b.record_open()
        b.record_open()
        b.record_read("x")
        b.record_read("y")
        a.merge(b)
        assert a.items_read == 3
        assert a.files_opened == 3
        # Both runs still hold their files: after the merge three files are
        # genuinely open at once, and the peak must reflect that.
        assert a.open_files == 3
        assert a.peak_open_files == 3
        assert a.reads_per_attribute == {"x": 2, "y": 1}

    def test_merge_carries_open_files_regression(self):
        """Regression: ``merge`` used to drop ``open_files``.

        A fresh stats object that absorbed a mid-flight run would report
        ``open_files == 0`` while ``files_opened`` said the cursors existed,
        and every subsequent ``record_open`` under-counted the true peak —
        exactly the Sec. 4.2 open-file budget the blockwise validator is
        built around.
        """
        outer, sub = IOStats(), IOStats()
        sub.record_open()
        sub.record_open()
        outer.merge(sub)
        assert outer.open_files == 2
        assert outer.peak_open_files == 2
        # A later open on the merged stats must see the carried-over files.
        outer.record_open()
        assert outer.peak_open_files == 3
        assert outer.files_opened == 3

    def test_merge_of_completed_runs_keeps_peak_max(self):
        """Completed block runs (all cursors closed) merge peaks by max."""
        a, b = IOStats(), IOStats()
        for stats, opens in ((a, 2), (b, 3)):
            for _ in range(opens):
                stats.record_open()
            for _ in range(opens):
                stats.record_close()
        a.merge(b)
        assert a.open_files == 0
        assert a.peak_open_files == 3
        assert a.files_opened == 5


class TestMemoryValueCursor:
    def test_iteration(self):
        cursor = MemoryValueCursor(["a", "b"])
        out = []
        while cursor.has_next():
            out.append(cursor.next_value())
        assert out == ["a", "b"]

    def test_read_past_end(self):
        cursor = MemoryValueCursor([])
        assert not cursor.has_next()
        with pytest.raises(SpoolError):
            cursor.next_value()

    def test_counts_reads(self):
        stats = IOStats()
        cursor = MemoryValueCursor(["a", "b"], stats, label="m")
        cursor.next_value()
        assert stats.items_read == 1
        cursor.close()
        assert stats.open_files == 0

    def test_use_after_close(self):
        cursor = MemoryValueCursor(["a"])
        cursor.close()
        with pytest.raises(SpoolError):
            cursor.next_value()

    def test_double_close_is_safe(self):
        stats = IOStats()
        cursor = MemoryValueCursor(["a"], stats)
        cursor.close()
        cursor.close()
        assert stats.open_files == 0


class TestFileValueCursor:
    def test_reads_escaped_lines(self, tmp_path):
        path = write_value_file(tmp_path / "v.vals", ["a\nb", "plain"])
        cursor = FileValueCursor(path)
        assert cursor.next_value() == "a\nb"
        assert cursor.next_value() == "plain"
        assert not cursor.has_next()
        cursor.close()

    def test_empty_file(self, tmp_path):
        path = write_value_file(tmp_path / "v.vals", [])
        cursor = FileValueCursor(path)
        assert not cursor.has_next()
        with pytest.raises(SpoolError):
            cursor.next_value()
        cursor.close()

    def test_missing_file(self, tmp_path):
        with pytest.raises(SpoolError, match="cannot open"):
            FileValueCursor(str(tmp_path / "missing.vals"))

    def test_stats_label(self, tmp_path):
        path = write_value_file(tmp_path / "v.vals", ["x"])
        stats = IOStats()
        cursor = FileValueCursor(path, stats, label="t.c")
        cursor.next_value()
        cursor.close()
        assert stats.reads_per_attribute == {"t.c": 1}
        assert stats.files_opened == 1
        assert stats.open_files == 0

    def test_use_after_close(self, tmp_path):
        path = write_value_file(tmp_path / "v.vals", ["x"])
        cursor = FileValueCursor(path)
        cursor.close()
        with pytest.raises(SpoolError):
            cursor.next_value()


def _all_cursor_kinds(tmp_path, values, stats=None):
    """One cursor of every kind over the same values."""
    path = write_value_file(tmp_path / "batch.vals", values)
    return [
        MemoryValueCursor(list(values), stats, label="m"),
        FileValueCursor(path, stats, label="f"),
        CountingCursor(iter(values), stats, label="i"),
    ]


class TestBatchedProtocol:
    def test_read_batch_consumes_and_counts(self, tmp_path):
        values = [f"{i:02d}" for i in range(10)]
        stats = IOStats()
        for cursor in _all_cursor_kinds(tmp_path, values, stats):
            before = stats.items_read
            assert cursor.read_batch(4) == values[:4]
            assert cursor.read_batch(100) == values[4:]
            assert cursor.read_batch(5) == []
            assert stats.items_read - before == 10
            cursor.close()
        assert stats.open_files == 0
        assert stats.files_opened == 3

    def test_peek_is_free_and_stable(self, tmp_path):
        values = ["a", "b", "c"]
        stats = IOStats()
        for cursor in _all_cursor_kinds(tmp_path, values, stats):
            before = stats.items_read
            assert cursor.peek_batch(2) == ["a", "b"]
            assert cursor.peek_batch(2) == ["a", "b"]  # idempotent
            assert stats.items_read == before
            cursor.advance(1)
            assert stats.items_read == before + 1
            assert cursor.peek_batch(2) == ["b", "c"]
            cursor.close()

    def test_advance_beyond_peeked_rejected(self, tmp_path):
        for cursor in _all_cursor_kinds(tmp_path, ["a", "b"]):
            cursor.peek_batch(2)
            with pytest.raises(SpoolError, match="cannot advance"):
                cursor.advance(3)
            cursor.close()

    def test_batched_and_single_reads_interleave(self, tmp_path):
        values = [f"{i}" for i in range(6)]
        for cursor in _all_cursor_kinds(tmp_path, values):
            assert cursor.next_value() == "0"
            assert cursor.read_batch(2) == ["1", "2"]
            assert cursor.next_value() == "3"
            assert cursor.peek_batch(5) == ["4", "5"]
            assert cursor.read_batch(5) == ["4", "5"]
            assert not cursor.has_next()
            cursor.close()

    def test_peek_after_close_rejected(self, tmp_path):
        for cursor in _all_cursor_kinds(tmp_path, ["a"]):
            cursor.close()
            with pytest.raises(SpoolError, match="after close"):
                cursor.peek_batch(1)

    def test_mixed_accounting_equals_per_value(self, tmp_path):
        """Batched and per-value consumption must report identical stats."""
        values = [f"{i:03d}" for i in range(25)]
        batched, single = IOStats(), IOStats()
        cursor = MemoryValueCursor(list(values), batched, label="x")
        while cursor.read_batch(7):
            pass
        cursor.close()
        cursor = MemoryValueCursor(list(values), single, label="x")
        while cursor.has_next():
            cursor.next_value()
        cursor.close()
        assert batched.items_read == single.items_read
        assert batched.reads_per_attribute == single.reads_per_attribute
        assert batched.files_opened == single.files_opened


class TestBatchReader:
    def test_iterates_all_values(self):
        stats = IOStats()
        reader = BatchReader(MemoryValueCursor(["a", "b", "c"], stats, "m"),
                             batch_size=2)
        out = []
        while reader.has_more():
            out.append(reader.next())
        assert out == ["a", "b", "c"]
        reader.close()
        assert stats.items_read == 3
        assert stats.open_files == 0

    def test_lazy_commit_flushes_on_close(self):
        stats = IOStats()
        reader = BatchReader(MemoryValueCursor(["a", "b", "c"], stats, "m"),
                             batch_size=10)
        reader.next()
        reader.next()
        # Consumption is committed lazily — but close() must settle it.
        reader.close()
        assert stats.items_read == 2

    def test_flush_keeps_cursor_open(self):
        stats = IOStats()
        cursor = MemoryValueCursor(["a", "b"], stats, "m")
        reader = BatchReader(cursor, batch_size=10)
        reader.next()
        reader.flush()
        assert stats.items_read == 1
        assert cursor.next_value() == "b"  # cursor still usable
        cursor.close()

    def test_read_past_end(self):
        reader = BatchReader(MemoryValueCursor([]))
        assert not reader.has_more()
        with pytest.raises(SpoolError, match="past end"):
            reader.next()

    def test_rejects_bad_batch_size(self):
        with pytest.raises(SpoolError, match="batch_size"):
            BatchReader(MemoryValueCursor([]), batch_size=0)


class TestCountingCursor:
    def test_wraps_iterator(self):
        stats = IOStats()
        cursor = CountingCursor(iter(["a", "b"]), stats)
        values = []
        while cursor.has_next():
            values.append(cursor.next_value())
        assert values == ["a", "b"]
        assert stats.items_read == 2

    def test_empty_iterator(self):
        cursor = CountingCursor(iter([]))
        assert not cursor.has_next()
        with pytest.raises(SpoolError):
            cursor.next_value()

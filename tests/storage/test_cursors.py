"""Tests for value cursors and I/O accounting."""

import pytest

from repro.errors import SpoolError
from repro.storage.codec import escape_line
from repro.storage.cursors import (
    CountingCursor,
    FileValueCursor,
    IOStats,
    MemoryValueCursor,
)


def write_value_file(path, values):
    with open(path, "w", encoding="utf-8") as fh:
        for value in values:
            fh.write(escape_line(value) + "\n")
    return str(path)


class TestIOStats:
    def test_open_close_tracking(self):
        stats = IOStats()
        stats.record_open()
        stats.record_open()
        assert stats.files_opened == 2
        assert stats.open_files == 2
        assert stats.peak_open_files == 2
        stats.record_close()
        stats.record_open()
        assert stats.open_files == 2
        assert stats.peak_open_files == 2  # never exceeded two concurrently

    def test_reads_per_attribute(self):
        stats = IOStats()
        stats.record_read("a")
        stats.record_read("a")
        stats.record_read("b")
        assert stats.items_read == 3
        assert stats.reads_per_attribute == {"a": 2, "b": 1}

    def test_merge(self):
        a, b = IOStats(), IOStats()
        a.record_open()
        a.record_read("x")
        b.record_open()
        b.record_open()
        b.record_read("x")
        b.record_read("y")
        a.merge(b)
        assert a.items_read == 3
        assert a.files_opened == 3
        assert a.peak_open_files == 2
        assert a.reads_per_attribute == {"x": 2, "y": 1}


class TestMemoryValueCursor:
    def test_iteration(self):
        cursor = MemoryValueCursor(["a", "b"])
        out = []
        while cursor.has_next():
            out.append(cursor.next_value())
        assert out == ["a", "b"]

    def test_read_past_end(self):
        cursor = MemoryValueCursor([])
        assert not cursor.has_next()
        with pytest.raises(SpoolError):
            cursor.next_value()

    def test_counts_reads(self):
        stats = IOStats()
        cursor = MemoryValueCursor(["a", "b"], stats, label="m")
        cursor.next_value()
        assert stats.items_read == 1
        cursor.close()
        assert stats.open_files == 0

    def test_use_after_close(self):
        cursor = MemoryValueCursor(["a"])
        cursor.close()
        with pytest.raises(SpoolError):
            cursor.next_value()

    def test_double_close_is_safe(self):
        stats = IOStats()
        cursor = MemoryValueCursor(["a"], stats)
        cursor.close()
        cursor.close()
        assert stats.open_files == 0


class TestFileValueCursor:
    def test_reads_escaped_lines(self, tmp_path):
        path = write_value_file(tmp_path / "v.vals", ["a\nb", "plain"])
        cursor = FileValueCursor(path)
        assert cursor.next_value() == "a\nb"
        assert cursor.next_value() == "plain"
        assert not cursor.has_next()
        cursor.close()

    def test_empty_file(self, tmp_path):
        path = write_value_file(tmp_path / "v.vals", [])
        cursor = FileValueCursor(path)
        assert not cursor.has_next()
        with pytest.raises(SpoolError):
            cursor.next_value()
        cursor.close()

    def test_missing_file(self, tmp_path):
        with pytest.raises(SpoolError, match="cannot open"):
            FileValueCursor(str(tmp_path / "missing.vals"))

    def test_stats_label(self, tmp_path):
        path = write_value_file(tmp_path / "v.vals", ["x"])
        stats = IOStats()
        cursor = FileValueCursor(path, stats, label="t.c")
        cursor.next_value()
        cursor.close()
        assert stats.reads_per_attribute == {"t.c": 1}
        assert stats.files_opened == 1
        assert stats.open_files == 0

    def test_use_after_close(self, tmp_path):
        path = write_value_file(tmp_path / "v.vals", ["x"])
        cursor = FileValueCursor(path)
        cursor.close()
        with pytest.raises(SpoolError):
            cursor.next_value()


class TestCountingCursor:
    def test_wraps_iterator(self):
        stats = IOStats()
        cursor = CountingCursor(iter(["a", "b"]), stats)
        values = []
        while cursor.has_next():
            values.append(cursor.next_value())
        assert values == ["a", "b"]
        assert stats.items_read == 2

    def test_empty_iterator(self):
        cursor = CountingCursor(iter([]))
        assert not cursor.has_next()
        with pytest.raises(SpoolError):
            cursor.next_value()

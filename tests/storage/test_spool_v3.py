"""Tests for spool format v3: compressed payloads, flag sniffing, mmap reads."""

import json
import pickle

import pytest

from repro.db.schema import AttributeRef
from repro.errors import SpoolError
from repro.storage.blockio import (
    BLOCK_HEADER,
    MAGIC,
    MAGIC_V3_ZLIB,
    BlockFileWriter,
    parse_magic,
    sniff_block_file,
)
from repro.storage.codec import (
    COMPRESSION_NONE,
    COMPRESSION_ZLIB,
    compress_payload,
    encode_block,
)
from repro.storage.cursors import (
    BlockFileValueCursor,
    IOStats,
    MmapBlockFileValueCursor,
)
from repro.storage.sorted_sets import (
    FORMAT_BINARY,
    SpoolDirectory,
)

A = AttributeRef("t", "a")
B = AttributeRef("t", "b")

AWKWARD = sorted(["", "a\nb", "a\\nb", "back\\slash", "nul\x00byte", "z\r"])


def _write(path, values, block_size=4):
    with BlockFileWriter(
        str(path), block_size=block_size, compression=COMPRESSION_ZLIB
    ) as writer:
        for value in values:
            writer.write(value)
    return writer


# ----------------------------------------------------------- compressed files
class TestCompressedRoundTrip:
    @pytest.mark.parametrize("block_size", [1, 2, 3, 1000])
    def test_values_survive(self, tmp_path, block_size):
        path = tmp_path / "v.valsb"
        values = [f"v{i:03d}" for i in range(17)]
        _write(path, values, block_size=block_size)
        cursor = BlockFileValueCursor(str(path))
        assert cursor.read_batch(100) == values
        cursor.close()

    @pytest.mark.parametrize("block_size", [1, 2, 5])
    def test_awkward_values(self, tmp_path, block_size):
        path = tmp_path / "v.valsb"
        _write(path, AWKWARD, block_size=block_size)
        cursor = BlockFileValueCursor(str(path))
        assert cursor.read_batch(100) == AWKWARD
        cursor.close()

    def test_empty_file_is_magic_only(self, tmp_path):
        path = tmp_path / "v.valsb"
        writer = _write(path, [])
        assert writer.count == 0 and writer.blocks == []
        assert path.read_bytes() == MAGIC_V3_ZLIB
        cursor = BlockFileValueCursor(str(path))
        assert not cursor.has_next()
        cursor.close()

    def test_writer_records_raw_and_stored_bytes(self, tmp_path):
        path = tmp_path / "v.valsb"
        # Highly repetitive values deflate well, so stored < raw is certain.
        writer = _write(path, ["x" * 50 + f"{i:03d}" for i in range(40)])
        for block in writer.blocks:
            assert block.raw_bytes > 0
            assert block.stored_bytes > 0
        assert writer.raw_payload_bytes == sum(
            b.raw_bytes for b in writer.blocks
        )
        assert writer.stored_payload_bytes == sum(
            b.stored_bytes for b in writer.blocks
        )
        assert writer.stored_payload_bytes < writer.raw_payload_bytes

    def test_bytes_accounting_charges_raw_and_stored(self, tmp_path):
        path = tmp_path / "v.valsb"
        writer = _write(path, ["y" * 30 + f"{i:02d}" for i in range(12)])
        stats = IOStats()
        cursor = BlockFileValueCursor(str(path), stats)
        cursor.read_batch(100)
        cursor.close()
        assert stats.bytes_read == writer.raw_payload_bytes
        assert stats.bytes_stored == writer.stored_payload_bytes
        assert stats.bytes_stored < stats.bytes_read


class TestMagicSniffing:
    def test_parse_magic_accepts_both_frames(self):
        assert parse_magic(MAGIC, "f") == COMPRESSION_NONE
        assert parse_magic(MAGIC_V3_ZLIB, "f") == COMPRESSION_ZLIB

    def test_unknown_v3_flags_rejected(self):
        unknown = b"RSPL2\x03\x02\n"  # flag bit 1 is unassigned
        with pytest.raises(SpoolError, match="unknown flags 0x02"):
            parse_magic(unknown, "f")

    def test_future_version_rejected(self):
        with pytest.raises(SpoolError, match="bad magic"):
            parse_magic(b"RSPL2\x04\x00\n", "f")

    def test_sniff_accepts_v3(self, tmp_path):
        path = tmp_path / "v.valsb"
        _write(path, ["x"])
        assert sniff_block_file(str(path))

    def test_sniff_rejects_unknown_flags(self, tmp_path):
        path = tmp_path / "v.valsb"
        path.write_bytes(b"RSPL2\x03\x04\n")
        assert not sniff_block_file(str(path))


class TestCompressedCorruption:
    """Every corruption raises SpoolError naming the file and the ordinal."""

    def test_bit_flipped_payload_names_file_and_block(self, tmp_path):
        path = tmp_path / "v.valsb"
        _write(path, [f"{i:04d}" for i in range(8)], block_size=4)
        data = bytearray(path.read_bytes())
        data[-3] ^= 0xFF  # inside the second block's deflate stream
        broken = tmp_path / "broken.valsb"
        broken.write_bytes(bytes(data))
        cursor = BlockFileValueCursor(str(broken))
        with pytest.raises(SpoolError, match="corrupt compressed block 1") as err:
            cursor.read_batch(100)
        assert "broken.valsb" in str(err.value)
        cursor.close()

    def test_truncated_compressed_payload(self, tmp_path):
        path = tmp_path / "v.valsb"
        _write(path, ["aaa", "bbb"], block_size=10)
        trimmed = tmp_path / "trimmed.valsb"
        trimmed.write_bytes(path.read_bytes()[:-2])
        cursor = BlockFileValueCursor(str(trimmed))
        with pytest.raises(SpoolError, match="truncated block 0"):
            cursor.has_next()
        cursor.close()

    def test_count_mismatch_after_inflate(self, tmp_path):
        # Hand-frame a block whose header promises 3 values but whose
        # (valid) deflate stream holds 2: decode must fail with the ordinal.
        payload = compress_payload(encode_block(["a", "b"]))
        path = tmp_path / "v.valsb"
        path.write_bytes(
            MAGIC_V3_ZLIB + BLOCK_HEADER.pack(len(payload), 3) + payload
        )
        cursor = BlockFileValueCursor(str(path))
        with pytest.raises(SpoolError, match="corrupt block 0"):
            cursor.read_batch(10)
        cursor.close()


# ----------------------------------------------------------------- mmap reads
class TestMmapCursor:
    @pytest.mark.parametrize("compression", [COMPRESSION_NONE, COMPRESSION_ZLIB])
    def test_reads_match_buffered_cursor(self, tmp_path, compression):
        path = tmp_path / "v.valsb"
        values = [f"{i:03d}" for i in range(25)]
        with BlockFileWriter(
            str(path), block_size=4, compression=compression
        ) as writer:
            for value in values:
                writer.write(value)
        buffered_stats, mmap_stats = IOStats(), IOStats()
        buffered = BlockFileValueCursor(str(path), buffered_stats)
        mapped = MmapBlockFileValueCursor(str(path), mmap_stats)
        assert mapped.read_batch(100) == buffered.read_batch(100)
        buffered.close()
        mapped.close()
        assert mmap_stats.items_read == buffered_stats.items_read
        assert mmap_stats.bytes_read == buffered_stats.bytes_read
        assert mmap_stats.bytes_stored == buffered_stats.bytes_stored

    def test_skip_blocks_below(self, tmp_path):
        spool = SpoolDirectory.create(
            tmp_path / "s",
            format=FORMAT_BINARY,
            block_size=4,
            compression=COMPRESSION_ZLIB,
            mmap_reads=True,
        )
        spool.add_values(A, [f"{i:04d}" for i in range(20)])
        spool.save_index()
        io = IOStats()
        cursor = spool.open_cursor(A, io)
        assert isinstance(cursor, MmapBlockFileValueCursor)
        assert cursor.skip_blocks_below("0013") == 3
        assert io.blocks_skipped == 3 and io.values_skipped == 12
        assert cursor.read_batch(3) == ["0012", "0013", "0014"]
        cursor.close()

    def test_pickling_reopens_by_path(self, tmp_path):
        path = tmp_path / "v.valsb"
        _write(path, [f"{i:02d}" for i in range(10)], block_size=3)
        cursor = MmapBlockFileValueCursor(str(path))
        assert cursor.read_batch(4) == ["00", "01", "02", "03"]
        clone = pickle.loads(pickle.dumps(cursor))
        assert isinstance(clone, MmapBlockFileValueCursor)
        assert clone.read_batch(3) == ["04", "05", "06"]
        cursor.close()
        clone.close()

    def test_corruption_still_names_file_and_block(self, tmp_path):
        path = tmp_path / "v.valsb"
        _write(path, [f"{i:04d}" for i in range(8)], block_size=4)
        data = bytearray(path.read_bytes())
        data[-3] ^= 0xFF
        path.write_bytes(bytes(data))
        cursor = MmapBlockFileValueCursor(str(path))
        with pytest.raises(SpoolError, match="corrupt compressed block 1"):
            cursor.read_batch(100)
        cursor.close()


# ----------------------------------------------------- compressed directories
class TestCompressedSpoolDirectory:
    def test_round_trip_and_reopen(self, tmp_path):
        spool = SpoolDirectory.create(
            tmp_path / "s",
            format=FORMAT_BINARY,
            block_size=2,
            compression=COMPRESSION_ZLIB,
        )
        spool.add_values(A, AWKWARD)
        spool.add_values(B, [])  # empty attribute: magic-only file
        spool.save_index()
        reopened = SpoolDirectory.open(tmp_path / "s")
        assert reopened.compression == COMPRESSION_ZLIB
        assert reopened.format == FORMAT_BINARY
        assert reopened.get(A).values() == AWKWARD
        assert reopened.get(B).values() == []

    def test_index_version_3_with_compression_key(self, tmp_path):
        spool = SpoolDirectory.create(
            tmp_path / "s",
            format=FORMAT_BINARY,
            block_size=2,
            compression=COMPRESSION_ZLIB,
        )
        spool.add_values(A, ["a" * 40, "b" * 40, "c" * 40])
        spool.save_index()
        doc = json.loads((tmp_path / "s" / "index.json").read_text())
        # Version 3 makes pre-v3 builds reject the directory loudly instead
        # of feeding deflate streams to the block decoder.
        assert doc["version"] == 3
        assert doc["compression"] == "zlib"
        (entry,) = doc["attributes"]
        for block in entry["blocks"]:
            assert block["raw"] > 0 and block["stored"] > 0

    def test_uncompressed_index_stays_version_2(self, tmp_path):
        spool = SpoolDirectory.create(
            tmp_path / "s", format=FORMAT_BINARY, block_size=2
        )
        spool.add_values(A, ["a", "b"])
        spool.save_index()
        doc = json.loads((tmp_path / "s" / "index.json").read_text())
        assert doc["version"] == 2
        assert "compression" not in doc
        assert "raw" not in doc["attributes"][0]["blocks"][0]

    def test_unknown_index_compression_rejected(self, tmp_path):
        root = tmp_path / "weird"
        root.mkdir()
        (root / "index.json").write_text(
            json.dumps(
                {"version": 3, "format": "binary", "compression": "lz4",
                 "attributes": []}
            )
        )
        with pytest.raises(SpoolError, match="lz4"):
            SpoolDirectory.open(root)

    def test_compression_requires_binary_format(self, tmp_path):
        with pytest.raises(SpoolError, match="requires the binary"):
            SpoolDirectory.create(
                tmp_path / "s", format="text", compression=COMPRESSION_ZLIB
            )

    def test_block_size_one(self, tmp_path):
        spool = SpoolDirectory.create(
            tmp_path / "s",
            format=FORMAT_BINARY,
            block_size=1,
            compression=COMPRESSION_ZLIB,
        )
        values = [f"{i:02d}" for i in range(7)]
        spool.add_values(A, values)
        spool.save_index()
        svf = SpoolDirectory.open(tmp_path / "s").get(A)
        assert len(svf.blocks) == len(values)
        assert svf.values() == values

    def test_spool_pickles_with_compression(self, tmp_path):
        spool = SpoolDirectory.create(
            tmp_path / "s",
            format=FORMAT_BINARY,
            block_size=2,
            compression=COMPRESSION_ZLIB,
            mmap_reads=True,
        )
        spool.add_values(A, ["a", "b", "c"])
        spool.save_index()
        clone = pickle.loads(pickle.dumps(spool))
        assert clone.compression == COMPRESSION_ZLIB
        assert clone.mmap_reads is True
        assert clone.get(A).values() == ["a", "b", "c"]

    def test_compressed_files_smaller_on_redundant_data(self, tmp_path):
        values = ["prefix-" * 8 + f"{i:05d}" for i in range(500)]
        sizes = {}
        for name, compression in (
            ("v2", COMPRESSION_NONE), ("v3", COMPRESSION_ZLIB),
        ):
            spool = SpoolDirectory.create(
                tmp_path / name, format=FORMAT_BINARY, compression=compression
            )
            spool.add_values(A, values)
            spool.save_index()
            sizes[name] = sum(
                p.stat().st_size for p in (tmp_path / name).glob("*.valsb")
            )
        assert sizes["v3"] < sizes["v2"] // 2

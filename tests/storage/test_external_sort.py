"""Tests for the bounded-memory external merge sort."""

import os

import pytest

from repro.storage.external_sort import external_sort


class TestInMemoryPath:
    def test_sorts_and_dedupes(self):
        assert list(external_sort(["b", "a", "b", "c"])) == ["a", "b", "c"]

    def test_empty_input(self):
        assert list(external_sort([])) == []

    def test_single_value(self):
        assert list(external_sort(["x"])) == ["x"]


class TestSpillPath:
    def test_multi_run_merge(self, tmp_path):
        values = [f"v{i:03d}" for i in range(100)]
        import random

        rng = random.Random(3)
        shuffled = values * 2
        rng.shuffle(shuffled)
        out = list(
            external_sort(shuffled, max_items_in_memory=7, tmp_dir=str(tmp_path))
        )
        assert out == values

    def test_duplicates_across_runs_removed(self, tmp_path):
        # The same value in different runs must merge to one occurrence.
        data = ["dup"] * 50 + ["aaa", "zzz"]
        out = list(
            external_sort(data, max_items_in_memory=5, tmp_dir=str(tmp_path))
        )
        assert out == ["aaa", "dup", "zzz"]

    def test_run_files_cleaned_up(self, tmp_path):
        list(
            external_sort(
                [str(i) for i in range(40)],
                max_items_in_memory=4,
                tmp_dir=str(tmp_path),
            )
        )
        assert os.listdir(tmp_path) == []

    def test_run_files_cleaned_on_partial_consumption(self, tmp_path):
        gen = external_sort(
            [str(i) for i in range(40)], max_items_in_memory=4,
            tmp_dir=str(tmp_path),
        )
        next(gen)
        gen.close()  # abandon the generator mid-stream
        assert os.listdir(tmp_path) == []

    def test_values_with_newlines_survive_spill(self, tmp_path):
        data = ["a\nb", "a", "a\\nb", "z\r"]
        out = list(
            external_sort(data, max_items_in_memory=2, tmp_dir=str(tmp_path))
        )
        assert out == sorted(set(data))


class TestSpillStress:
    """The spill path at the tightest possible memory bounds (1..3 items)."""

    @pytest.mark.parametrize("limit", [1, 2, 3])
    def test_tight_memory_matches_reference(self, tmp_path, limit):
        import random

        rng = random.Random(limit)
        data = [f"{rng.randint(0, 30):02d}" for _ in range(200)]
        out = list(
            external_sort(data, max_items_in_memory=limit, tmp_dir=str(tmp_path))
        )
        assert out == sorted(set(data))
        assert os.listdir(tmp_path) == []

    @pytest.mark.parametrize("limit", [1, 2, 3])
    def test_duplicate_heavy_input(self, tmp_path, limit):
        # 97% duplicates: every run holds the same value, the k-way merge
        # must still emit it exactly once.
        data = ["dup"] * 300 + ["aa", "zz"] + ["dup"] * 100
        out = list(
            external_sort(data, max_items_in_memory=limit, tmp_dir=str(tmp_path))
        )
        assert out == ["aa", "dup", "zz"]
        assert os.listdir(tmp_path) == []

    def test_all_identical_values(self, tmp_path):
        out = list(
            external_sort(["x"] * 50, max_items_in_memory=1, tmp_dir=str(tmp_path))
        )
        assert out == ["x"]
        assert os.listdir(tmp_path) == []

    @pytest.mark.parametrize("limit", [1, 2, 3])
    @pytest.mark.parametrize("consumed", [0, 1, 5])
    def test_abandoned_iterator_cleans_runs(self, tmp_path, limit, consumed):
        """Run files must vanish however early the consumer walks away."""
        gen = external_sort(
            [f"{i:02d}" for i in range(60)] * 2,
            max_items_in_memory=limit,
            tmp_dir=str(tmp_path),
        )
        for _ in range(consumed):
            next(gen)
        # While the generator is live its run files exist on disk...
        if consumed:
            assert len(os.listdir(tmp_path)) > 0
        gen.close()
        # ...abandoning it mid-stream must remove every one of them.
        assert os.listdir(tmp_path) == []

    def test_abandoned_by_garbage_collection(self, tmp_path):
        import gc

        gen = external_sort(
            [f"{i:02d}" for i in range(40)],
            max_items_in_memory=2,
            tmp_dir=str(tmp_path),
        )
        next(gen)
        del gen
        gc.collect()
        assert os.listdir(tmp_path) == []


class TestValidation:
    def test_rejects_zero_memory(self):
        with pytest.raises(ValueError):
            list(external_sort(["a"], max_items_in_memory=0))

    def test_matches_in_memory_reference(self, tmp_path):
        import random

        rng = random.Random(11)
        data = [rng.choice("abcdefgh") * rng.randint(1, 4) for _ in range(500)]
        expected = sorted(set(data))
        for limit in (1, 3, 10, 1000):
            got = list(
                external_sort(data, max_items_in_memory=limit,
                              tmp_dir=str(tmp_path))
            )
            assert got == expected, f"limit={limit}"

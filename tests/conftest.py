"""Shared fixtures for the test suite.

Loading this conftest also puts ``tests/`` on ``sys.path``, which is what
lets test modules at any depth import the shared seeded builders
(``from seeded_dbs import build_db, build_random_db, spool_with``) — see
``tests/seeded_dbs.py``.
"""

from __future__ import annotations

import pytest

from repro.db import Column, Database, DataType, TableSchema
from repro.db.stats import collect_column_stats
from repro.storage.exporter import export_database
from repro.storage.sorted_sets import SpoolDirectory


@pytest.fixture()
def fk_db() -> Database:
    """A small parent/child database with one true FK and planted noise.

    INDs that hold: child.pid [= parent.id (the FK),
    child.pid [= child.cid (40 > 25 ids, 1-based ranges... see values),
    and parent.id [= child.cid.
    """
    db = Database("fk_db")
    parent = db.create_table(
        TableSchema(
            "parent",
            [Column("id", DataType.INTEGER), Column("acc", DataType.VARCHAR)],
            primary_key="id",
        )
    )
    child = db.create_table(
        TableSchema(
            "child",
            [
                Column("cid", DataType.INTEGER),
                Column("pid", DataType.INTEGER),
                Column("note", DataType.VARCHAR),
            ],
            primary_key="cid",
        )
    )
    for i in range(25):
        parent.insert({"id": i + 1, "acc": f"ACC{i + 1:04d}"})
    for i in range(40):
        child.insert(
            {
                "cid": i + 1,
                "pid": (i % 25) + 1,
                "note": ["alpha", "beta", None][i % 3],
            }
        )
    return db


@pytest.fixture()
def fk_spool(fk_db, tmp_path) -> SpoolDirectory:
    spool, _ = export_database(fk_db, str(tmp_path / "spool"))
    return spool


@pytest.fixture()
def fk_stats(fk_db):
    return collect_column_stats(fk_db)


def make_db(tables: dict[str, dict[str, list]]) -> Database:
    """Build a database from {table: {column: [values]}} with inferred types.

    Test helper: all columns nullable, types inferred from the values.
    """
    from repro.db.types import infer_type

    db = Database("adhoc")
    for table_name, columns in tables.items():
        schema = TableSchema(
            table_name,
            [Column(name, infer_type(values)) for name, values in columns.items()],
        )
        table = db.create_table(schema)
        lengths = {len(v) for v in columns.values()}
        assert len(lengths) == 1, "all columns must have equal row counts"
        n = lengths.pop()
        names = list(columns)
        for i in range(n):
            table.insert({name: columns[name][i] for name in names})
    return db


@pytest.fixture()
def adhoc_db_factory():
    return make_db

"""Tests for primary-relation identification (Heuristic 2)."""

from repro.core.ind import IND, INDSet
from repro.db import Column, Database, DataType, TableSchema
from repro.db.schema import AttributeRef
from repro.discovery.primary_relation import identify_primary_relation


def build_db() -> Database:
    db = Database("prim")
    for name in ("main", "side", "noacc"):
        t = db.create_table(
            TableSchema(
                name,
                [Column("acc", DataType.VARCHAR), Column("v", DataType.INTEGER)],
            )
        )
        for i in range(8):
            # 'noacc' gets short values -> no accession candidate there.
            acc = f"Q{i:05d}" if name != "noacc" else "ab"
            t.insert({"acc": acc, "v": i})
    return db


MAIN_ACC = AttributeRef("main", "acc")
SIDE_ACC = AttributeRef("side", "acc")
NO_ACC = AttributeRef("noacc", "acc")
MAIN_V = AttributeRef("main", "v")
SIDE_V = AttributeRef("side", "v")
NOACC_V = AttributeRef("noacc", "v")


class TestHeuristic2:
    def test_most_referenced_wins(self):
        db = build_db()
        inds = INDSet(
            [
                IND(SIDE_V, MAIN_V),
                IND(NOACC_V, MAIN_V),
                IND(NOACC_V, SIDE_V),
            ]
        )
        report = identify_primary_relation(db, inds)
        assert report.primary_relation == "main"
        assert report.ind_counts == {"main": 2, "side": 1}

    def test_tables_without_accession_excluded(self):
        db = build_db()
        # Everything references noacc, but it has no accession candidate.
        inds = INDSet([IND(MAIN_V, NOACC_V), IND(SIDE_V, NOACC_V)])
        report = identify_primary_relation(db, inds)
        assert "noacc" not in report.ind_counts
        assert report.primary_relation is None or report.primary_relation != "noacc"

    def test_tie_produces_shortlist(self):
        db = build_db()
        inds = INDSet([IND(NOACC_V, MAIN_V), IND(NOACC_V, SIDE_V)])
        report = identify_primary_relation(db, inds)
        assert report.shortlist == ["main", "side"]
        assert report.primary_relation is None

    def test_ranked_output(self):
        db = build_db()
        inds = INDSet([IND(SIDE_V, MAIN_V)])
        report = identify_primary_relation(db, inds)
        ranked = report.ranked()
        assert ranked[0] == ("main", 1)
        assert ranked[1] == ("side", 0)

    def test_no_accession_candidates_at_all(self):
        db = Database("empty")
        t = db.create_table(TableSchema("t", [Column("v", DataType.INTEGER)]))
        t.insert({"v": 1})
        report = identify_primary_relation(db, INDSet())
        assert report.shortlist == []
        assert report.primary_relation is None

    def test_precomputed_candidates_respected(self):
        db = build_db()
        from repro.discovery.accession import find_accession_candidates

        candidates = [
            p for p in find_accession_candidates(db) if p.ref.table == "side"
        ]
        report = identify_primary_relation(
            db, INDSet([IND(NOACC_V, MAIN_V)]), accession_candidates=candidates
        )
        # Only 'side' was offered, so 'main' cannot win.
        assert report.shortlist == ["side"]

    def test_inds_counted_into_any_attribute_of_table(self):
        db = build_db()
        # INDs into main.acc and main.v both count for table 'main'.
        inds = INDSet([IND(SIDE_ACC, MAIN_ACC), IND(SIDE_V, MAIN_V)])
        report = identify_primary_relation(db, inds)
        assert report.ind_counts["main"] == 2

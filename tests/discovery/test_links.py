"""Tests for inter-database link discovery (Aladin step 4)."""

import pytest

from repro.db import Column, Database, DataType, TableSchema
from repro.discovery.links import discover_links
from repro.errors import DiscoveryError


def primary_db(name: str, codes: list[str]) -> Database:
    """A database whose primary relation 'main' holds accession codes."""
    db = Database(name)
    main = db.create_table(
        TableSchema(
            "main",
            [
                Column("main_id", DataType.INTEGER),
                Column("acc", DataType.VARCHAR, nullable=False, unique=True),
            ],
            primary_key="main_id",
        )
    )
    anno = db.create_table(
        TableSchema(
            "anno",
            [
                Column("anno_id", DataType.INTEGER),
                Column("main_ref", DataType.INTEGER, nullable=False),
                Column("note", DataType.VARCHAR),
            ],
            primary_key="anno_id",
        )
    )
    for i, code in enumerate(codes):
        main.insert({"main_id": i + 1, "acc": code})
    for i in range(len(codes) * 2):
        anno.insert(
            {
                "anno_id": i + 1,
                "main_ref": (i % len(codes)) + 1,
                "note": "na" if i == 0 else "free text note",
            }
        )
    return db


CODES = [f"Q{i:05d}" for i in range(12)]


@pytest.fixture()
def target() -> Database:
    return primary_db("target", CODES)


def source_with_column(values, name="source") -> Database:
    db = Database(name)
    t = db.create_table(
        TableSchema(
            "xref",
            [Column("x_id", DataType.INTEGER), Column("link", DataType.VARCHAR)],
            primary_key="x_id",
        )
    )
    for i, v in enumerate(values):
        t.insert({"x_id": i + 1, "link": v})
    return db


class TestExactLinks:
    def test_exact_subset_found(self, target):
        source = source_with_column(CODES[:5])
        links = discover_links([target, source])
        assert any(
            l.source.qualified == "xref.link" and l.target.qualified == "main.acc"
            and l.is_exact
            for l in links
        )

    def test_non_subset_not_linked(self, target):
        source = source_with_column(["NOPE01", "NOPE02"])
        links = discover_links([target, source])
        assert all(l.source.qualified != "xref.link" for l in links)

    def test_only_primary_relation_targets(self, target):
        # anno.note is a string column of the target, but it is not in the
        # primary relation: nothing may link INTO it.
        source = source_with_column(["free text note"])
        links = discover_links([target, source])
        assert all(l.target.table == "main" for l in links)

    def test_single_database_yields_nothing(self, target):
        assert discover_links([target]) == []

    def test_duplicate_names_rejected(self, target):
        with pytest.raises(DiscoveryError, match="distinct names"):
            discover_links([target, primary_db("target", CODES)])


class TestPrefixedLinks:
    def test_prefixed_values_link(self, target):
        source = source_with_column([f"PDB-{c}" for c in CODES[:6]])
        links = discover_links([target, source])
        hit = next(l for l in links if l.source.qualified == "xref.link")
        assert hit.stripped_prefix == "PDB-"
        assert not hit.is_exact
        assert "strip(" in str(hit)

    def test_prefix_detection_disabled(self, target):
        source = source_with_column([f"PDB-{c}" for c in CODES[:6]])
        links = discover_links([target, source], allow_prefixed=False)
        assert all(l.source.qualified != "xref.link" for l in links)

    def test_mixed_prefixes_do_not_link(self, target):
        source = source_with_column(
            [f"PDB-{CODES[0]}", f"EMBL-{CODES[1]}"]
        )
        links = discover_links([target, source])
        assert all(l.source.qualified != "xref.link" for l in links)

    def test_min_source_values(self, target):
        source = source_with_column([CODES[0]])
        links = discover_links([target, source], min_source_values=2)
        assert all(l.source.qualified != "xref.link" for l in links)


class TestPrecomputedInds:
    def test_intra_inds_passed_through(self, target):
        from repro.core import DiscoveryConfig, discover_inds

        source = source_with_column(CODES[:4])
        intra = {
            db.name: discover_inds(db, DiscoveryConfig()).satisfied
            for db in (target, source)
        }
        links = discover_links([target, source], intra_inds=intra)
        assert any(l.source.qualified == "xref.link" for l in links)

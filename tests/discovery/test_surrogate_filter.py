"""Tests for the surrogate-key range filter."""

import pytest

from repro.core.ind import IND, INDSet
from repro.db import Column, Database, DataType, TableSchema
from repro.db.schema import AttributeRef
from repro.db.stats import collect_column_stats
from repro.discovery.surrogate_filter import (
    filter_surrogate_inds,
    profile_surrogate,
)


@pytest.fixture()
def db() -> Database:
    database = Database("surr")
    t = database.create_table(
        TableSchema(
            "a",
            [
                Column("a_id", DataType.INTEGER),     # 1..20 dense
                Column("sparse", DataType.INTEGER),   # scattered
                Column("text", DataType.VARCHAR),
            ],
        )
    )
    for i in range(20):
        t.insert({"a_id": i + 1, "sparse": i * 37 + 5, "text": f"v{i}"})
    u = database.create_table(
        TableSchema(
            "struct",
            [
                Column("struct_id", DataType.INTEGER),  # 1..40 dense
                Column("zero_based", DataType.INTEGER),  # 0..39 dense
            ],
        )
    )
    for i in range(40):
        u.insert({"struct_id": i + 1, "zero_based": i})
    w = database.create_table(
        TableSchema("ref_holder", [Column("struct_ref", DataType.INTEGER)])
    )
    for i in range(30):
        w.insert({"struct_ref": (i % 40) + 1})
    return database


@pytest.fixture()
def stats(db):
    return collect_column_stats(db)


A_ID = AttributeRef("a", "a_id")
SPARSE = AttributeRef("a", "sparse")
TEXT = AttributeRef("a", "text")
STRUCT_ID = AttributeRef("struct", "struct_id")
ZERO = AttributeRef("struct", "zero_based")
STRUCT_REF = AttributeRef("ref_holder", "struct_ref")


class TestProfile:
    def test_dense_one_based(self, stats):
        profile = profile_surrogate(A_ID, stats[A_ID])
        assert profile.is_surrogate_like
        assert profile.min_value == 1
        assert profile.density == 1.0

    def test_dense_zero_based(self, stats):
        assert profile_surrogate(ZERO, stats[ZERO]).is_surrogate_like

    def test_sparse_not_surrogate(self, stats):
        profile = profile_surrogate(SPARSE, stats[SPARSE])
        assert not profile.is_surrogate_like
        assert profile.density < 0.1

    def test_text_not_surrogate(self, stats):
        assert not profile_surrogate(TEXT, stats[TEXT]).is_surrogate_like

    def test_uses_numeric_not_rendered_bounds(self, stats):
        # a_id 1..20: rendered max is "9", numeric max is 20.  A rendered
        # implementation would compute density 20/9 > 1 and misbehave.
        profile = profile_surrogate(A_ID, stats[A_ID])
        assert profile.max_value == 20

    def test_origin_configurable(self, stats):
        profile = profile_surrogate(
            ZERO, stats[ZERO], origin_values=(1,)
        )
        assert not profile.is_surrogate_like


class TestFilter:
    def test_surrogate_pair_filtered(self, stats):
        inds = INDSet([IND(A_ID, STRUCT_ID)])
        report = filter_surrogate_inds(inds, stats, rescue_by_name=False)
        assert len(report.filtered) == 1
        assert len(report.kept) == 0

    def test_non_surrogate_side_kept(self, stats):
        inds = INDSet([IND(SPARSE, STRUCT_ID)])
        report = filter_surrogate_inds(inds, stats)
        assert IND(SPARSE, STRUCT_ID) in report.kept

    def test_name_affinity_rescues_real_link(self, stats):
        # ref_holder.struct_ref [= struct.struct_id is a real link between
        # two dense ranges: the name evidence must keep it.
        ind = IND(STRUCT_REF, STRUCT_ID)
        report = filter_surrogate_inds(INDSet([ind]), stats)
        assert ind in report.kept
        assert ind in report.rescued_by_name

    def test_rescue_can_be_disabled(self, stats):
        ind = IND(STRUCT_REF, STRUCT_ID)
        report = filter_surrogate_inds(
            INDSet([ind]), stats, rescue_by_name=False
        )
        assert ind in report.filtered

    def test_mixed_set(self, stats):
        inds = INDSet(
            [
                IND(A_ID, STRUCT_ID),      # noise: filtered
                IND(SPARSE, STRUCT_ID),    # kept (sparse side)
                IND(STRUCT_REF, STRUCT_ID),  # rescued
            ]
        )
        report = filter_surrogate_inds(inds, stats)
        assert report.filtered_count == 1
        assert len(report.kept) == 2

    def test_profiles_cached_in_report(self, stats):
        inds = INDSet([IND(A_ID, STRUCT_ID), IND(A_ID, ZERO)])
        report = filter_surrogate_inds(inds, stats)
        assert A_ID in report.profiles
        assert report.profiles[A_ID].is_surrogate_like

    def test_density_threshold(self, stats):
        # With an extreme density requirement nothing is surrogate-like.
        inds = INDSet([IND(A_ID, STRUCT_ID)])
        report = filter_surrogate_inds(inds, stats, min_density=1.01)
        assert len(report.filtered) == 0

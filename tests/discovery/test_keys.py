"""Tests for primary-key candidate discovery (Aladin step 2)."""

from repro.db import Column, Database, DataType, TableSchema
from repro.db.schema import AttributeRef
from repro.discovery.keys import find_primary_key_candidates


def build_db() -> Database:
    db = Database("keys")
    t = db.create_table(
        TableSchema(
            "t",
            [
                Column("id", DataType.INTEGER),        # unique, non-null
                Column("code", DataType.VARCHAR),      # unique, non-null
                Column("maybe", DataType.INTEGER),     # unique among non-null
                Column("dup", DataType.INTEGER),       # duplicates
                Column("payload", DataType.CLOB),      # LOB
            ],
        )
    )
    for i in range(10):
        t.insert(
            {
                "id": i,
                "code": f"c{i}",
                "maybe": i if i % 2 == 0 else None,
                "dup": i % 3,
                "payload": "x" * 100,
            }
        )
    return db


class TestCandidates:
    def test_unique_columns_found(self):
        candidates = find_primary_key_candidates(build_db())["t"]
        refs = {c.ref.column for c in candidates}
        assert refs == {"id", "code", "maybe"}

    def test_duplicates_excluded(self):
        candidates = find_primary_key_candidates(build_db())["t"]
        assert all(c.ref.column != "dup" for c in candidates)

    def test_lob_excluded(self):
        candidates = find_primary_key_candidates(build_db())["t"]
        assert all(c.ref.column != "payload" for c in candidates)

    def test_ranking_null_free_first(self):
        candidates = find_primary_key_candidates(build_db())["t"]
        # 'maybe' has NULLs: must rank behind both null-free columns.
        assert candidates[-1].ref == AttributeRef("t", "maybe")
        assert not candidates[-1].null_free

    def test_ranking_integer_before_string(self):
        candidates = find_primary_key_candidates(build_db())["t"]
        assert candidates[0].ref == AttributeRef("t", "id")
        assert candidates[1].ref == AttributeRef("t", "code")

    def test_coverage(self):
        candidates = find_primary_key_candidates(build_db())["t"]
        by_col = {c.ref.column: c for c in candidates}
        assert by_col["id"].coverage == 1.0
        assert by_col["maybe"].coverage == 0.5

    def test_tables_without_candidates_absent(self):
        db = Database("none")
        t = db.create_table(TableSchema("t", [Column("d", DataType.INTEGER)]))
        t.insert({"d": 1})
        t.insert({"d": 1})
        assert find_primary_key_candidates(db) == {}

    def test_precomputed_stats_accepted(self):
        from repro.db.stats import collect_column_stats

        db = build_db()
        stats = collect_column_stats(db)
        assert find_primary_key_candidates(db, stats) == (
            find_primary_key_candidates(db)
        )

"""Tests for the accession-number heuristic (Sec. 5, Heuristic 1)."""

import pytest

from repro.db import Column, Database, DataType, TableSchema
from repro.db.schema import AttributeRef
from repro.discovery.accession import (
    AccessionProfile,
    AccessionRule,
    find_accession_candidates,
    profile_attribute,
)
from repro.errors import DiscoveryError


def single_column_db(values, dtype=DataType.VARCHAR) -> Database:
    db = Database("acc")
    t = db.create_table(TableSchema("t", [Column("c", dtype)]))
    for v in values:
        t.insert({"c": v})
    return db


REF = AttributeRef("t", "c")


class TestRule:
    def test_defaults_are_papers(self):
        rule = AccessionRule()
        assert rule.min_length == 4
        assert rule.max_length_spread == 0.2
        assert rule.min_fraction == 1.0

    def test_value_conformance(self):
        rule = AccessionRule()
        assert rule.value_conforms("Q9H2X1")
        assert not rule.value_conforms("abc")       # too short
        assert not rule.value_conforms("123456")    # no letter
        assert rule.value_conforms("1abc")

    def test_letter_requirement_optional(self):
        rule = AccessionRule(require_letter=False)
        assert rule.value_conforms("123456")

    def test_invalid_fraction(self):
        with pytest.raises(DiscoveryError):
            AccessionRule(min_fraction=0.0)
        with pytest.raises(DiscoveryError):
            AccessionRule(min_fraction=1.5)

    def test_invalid_spread(self):
        with pytest.raises(DiscoveryError):
            AccessionRule(max_length_spread=-0.1)


class TestProfile:
    def test_uniform_accessions_pass(self):
        db = single_column_db(["Q12345", "P99999", "O00001"])
        profile = profile_attribute(db, REF, AccessionRule())
        assert profile.passes(AccessionRule())
        assert profile.fraction == 1.0
        assert profile.length_spread == 0.0

    def test_short_value_fails_strict(self):
        db = single_column_db(["Q12345", "abc"])
        profile = profile_attribute(db, REF, AccessionRule())
        assert not profile.passes(AccessionRule())
        assert profile.fraction == 0.5

    def test_length_spread_limit(self):
        # 8 vs 10 chars: spread 0.2 exactly -> passes; 7 vs 10 fails.
        ok = single_column_db(["ABCDEFGH", "ABCDEFGHIJ"])
        profile = profile_attribute(ok, REF, AccessionRule())
        assert profile.passes(AccessionRule())
        bad = single_column_db(["ABCDEFG", "ABCDEFGHIJ"])
        profile = profile_attribute(bad, REF, AccessionRule())
        assert not profile.passes(AccessionRule())

    def test_numbers_fail_letter_rule(self):
        db = single_column_db(["123456", "789012"])
        assert not profile_attribute(db, REF, AccessionRule()).passes(
            AccessionRule()
        )

    def test_integers_as_strings_fail(self):
        db = single_column_db([123456, 789012], DataType.INTEGER)
        assert not profile_attribute(db, REF, AccessionRule()).passes(
            AccessionRule()
        )

    def test_empty_column_never_passes(self):
        db = single_column_db([None, None])
        profile = profile_attribute(db, REF, AccessionRule())
        assert not profile.passes(AccessionRule())

    def test_nulls_not_counted(self):
        db = single_column_db(["Q12345", None, "P54321"])
        profile = profile_attribute(db, REF, AccessionRule())
        assert profile.total_values == 2
        assert profile.passes(AccessionRule())


class TestSoftened:
    def test_one_dirty_value_fails_strict_passes_softened(self):
        values = ["Q1234%d" % i for i in range(99)] + ["?"]
        db = single_column_db(values)
        strict = profile_attribute(db, REF, AccessionRule())
        assert not strict.passes(AccessionRule())
        soft_rule = AccessionRule(min_fraction=0.99)
        assert strict.passes(soft_rule)

    def test_spread_computed_on_conforming_values(self):
        # The dirty "?" must not drag the length spread down.
        values = ["ABCDEF"] * 50 + ["?"]
        db = single_column_db(values)
        profile = profile_attribute(db, REF, AccessionRule(min_fraction=0.9))
        assert profile.length_spread == 0.0
        assert profile.passes(AccessionRule(min_fraction=0.9))

    def test_fraction_boundary_inclusive(self):
        values = ["ABCDEF"] * 95 + ["?"] * 5
        db = single_column_db(values)
        profile = profile_attribute(db, REF, AccessionRule())
        assert profile.fraction == 0.95
        assert profile.passes(AccessionRule(min_fraction=0.95))
        assert not profile.passes(AccessionRule(min_fraction=0.951))


class TestFindCandidates:
    def test_finds_only_qualifying_columns(self):
        db = Database("multi")
        t = db.create_table(
            TableSchema(
                "t",
                [
                    Column("acc", DataType.VARCHAR),
                    Column("free", DataType.VARCHAR),
                    Column("num", DataType.INTEGER),
                    Column("blob", DataType.BLOB),
                ],
            )
        )
        for i in range(10):
            t.insert(
                {
                    "acc": f"Q{i:05d}",
                    "free": "na" if i == 0 else "some longer description",
                    "num": i,
                    "blob": b"\x00",
                }
            )
        candidates = find_accession_candidates(db)
        assert [p.ref for p in candidates] == [AttributeRef("t", "acc")]

    def test_lob_columns_skipped(self):
        db = Database("lob")
        t = db.create_table(TableSchema("t", [Column("c", DataType.CLOB)]))
        t.insert({"c": "ABCDEF"})
        assert find_accession_candidates(db) == []

    def test_deterministic_order(self):
        db = Database("order")
        for name in ("zz", "aa"):
            t = db.create_table(TableSchema(name, [Column("c", DataType.VARCHAR)]))
            t.insert({"c": "ABCDEF"})
        refs = [p.ref for p in find_accession_candidates(db)]
        assert refs == [AttributeRef("aa", "c"), AttributeRef("zz", "c")]

"""Tests for the end-to-end Aladin pipeline."""

import pytest

from repro.core.runner import DiscoveryConfig
from repro.datagen import generate_biosql
from repro.db import Column, Database, DataType, TableSchema
from repro.discovery.pipeline import AladinPipeline
from repro.errors import DiscoveryError


@pytest.fixture(scope="module")
def biosql_db():
    return generate_biosql("tiny").db


class TestSingleDatabase:
    def test_full_report(self, biosql_db):
        report = AladinPipeline().run([biosql_db])
        db_report = report.databases["uniprot_biosql"]
        assert db_report.summary["tables"] == 16
        assert len(db_report.inds) > 0
        assert db_report.fk_guesses
        assert db_report.primary_relation.primary_relation == "sg_bioentry"
        assert report.links == []

    def test_key_candidates_cover_pk_tables(self, biosql_db):
        report = AladinPipeline().run([biosql_db])
        keys = report.databases["uniprot_biosql"].key_candidates
        assert "sg_bioentry" in keys
        best = keys["sg_bioentry"][0]
        assert best.ref.column in ("bioentry_id", "accession", "identifier")

    def test_surrogate_filter_optional(self, biosql_db):
        with_filter = AladinPipeline(apply_surrogate_filter=True).run([biosql_db])
        without = AladinPipeline(apply_surrogate_filter=False).run([biosql_db])
        assert without.databases["uniprot_biosql"].surrogate_report is None
        assert (
            with_filter.databases["uniprot_biosql"].surrogate_report is not None
        )

    def test_requires_databases(self):
        with pytest.raises(DiscoveryError, match="at least one"):
            AladinPipeline().run([])

    def test_custom_discovery_config(self, biosql_db):
        report = AladinPipeline(
            discovery_config=DiscoveryConfig(strategy="brute-force")
        ).run([biosql_db])
        assert (
            report.databases["uniprot_biosql"].discovery.strategy == "brute-force"
        )


class TestDuplicateFlagging:
    def test_exact_duplicates_counted(self):
        db = Database("dups")
        t = db.create_table(
            TableSchema("t", [Column("a", DataType.INTEGER),
                              Column("b", DataType.VARCHAR)])
        )
        t.insert({"a": 1, "b": "x"})
        t.insert({"a": 1, "b": "x"})
        t.insert({"a": 1, "b": "x"})
        t.insert({"a": 2, "b": None})
        t.insert({"a": 2, "b": None})
        report = AladinPipeline().run([db])
        assert report.databases["dups"].duplicate_rows == {"t": 3}

    def test_no_duplicates_empty_map(self, biosql_db):
        report = AladinPipeline().run([biosql_db])
        # BioSQL tables carry unique surrogate keys: no exact duplicates.
        assert report.databases["uniprot_biosql"].duplicate_rows == {}


class TestMultiDatabase:
    def test_links_computed_between_sources(self, biosql_db):
        # Second source referencing bioentry accessions with a prefix.
        accessions = [
            row["accession"] for row in biosql_db.table("sg_bioentry").rows()
        ][:10]
        other = Database("microarray")
        t = other.create_table(
            TableSchema(
                "probe",
                [
                    Column("probe_id", DataType.INTEGER),
                    Column("uniprot_xref", DataType.VARCHAR),
                    Column("descr", DataType.VARCHAR),
                ],
                primary_key="probe_id",
            )
        )
        for i, acc in enumerate(accessions):
            t.insert(
                {
                    "probe_id": i + 1,
                    "uniprot_xref": f"UP:{acc}",
                    "descr": "na" if i == 0 else "probe description",
                }
            )
        report = AladinPipeline().run([biosql_db, other])
        assert any(
            link.source.qualified == "probe.uniprot_xref"
            and link.target.qualified == "sg_bioentry.accession"
            and link.stripped_prefix == "UP:"
            for link in report.links
        )

"""Tests for FK evaluation against gold standards and FK ranking."""

import pytest

from repro.core.ind import IND, INDSet
from repro.db.schema import AttributeRef, ForeignKey
from repro.db.stats import ColumnStats
from repro.db.types import DataType
from repro.discovery.foreign_keys import (
    evaluate_against_gold,
    rank_fk_candidates,
)

PARENT_ID = AttributeRef("parent", "id")
CHILD_PID = AttributeRef("child", "pid")
SEQ_ID = AttributeRef("seq", "parent_id")  # 1:1 with parent
OTHER = AttributeRef("other", "x")

FK_CHILD = ForeignKey("child", "pid", "parent", "id")
FK_SEQ = ForeignKey("seq", "parent_id", "parent", "id")
FK_EMPTY = ForeignKey("ghost", "gid", "parent", "id")


class TestEvaluation:
    def test_all_matched(self):
        inds = INDSet([IND(CHILD_PID, PARENT_ID), IND(SEQ_ID, PARENT_ID)])
        ev = evaluate_against_gold(inds, [FK_CHILD, FK_SEQ])
        assert len(ev.matched) == 2
        assert ev.recall == 1.0
        assert ev.precision == 1.0
        assert not ev.missed and not ev.false_positives

    def test_missed_fk(self):
        ev = evaluate_against_gold(INDSet(), [FK_CHILD])
        assert len(ev.missed) == 1
        assert ev.recall == 0.0

    def test_empty_table_fk_unrecoverable(self):
        ev = evaluate_against_gold(INDSet(), [FK_EMPTY], empty_tables={"ghost"})
        assert len(ev.unrecoverable) == 1
        assert not ev.missed
        assert ev.recall == 1.0  # nothing recoverable was missed

    def test_equality_implied_inds(self):
        # seq.parent_id == parent.id as value sets: the reverse IND and the
        # chained INDs must classify as implied, not false positives.
        inds = INDSet(
            [
                IND(CHILD_PID, PARENT_ID),
                IND(SEQ_ID, PARENT_ID),
                IND(PARENT_ID, SEQ_ID),  # reverse of FK_SEQ (equality)
                IND(CHILD_PID, SEQ_ID),  # chained through the equality
            ]
        )
        ev = evaluate_against_gold(inds, [FK_CHILD, FK_SEQ])
        assert len(ev.matched) == 2
        assert {str(i) for i in ev.implied} == {
            "parent.id [= seq.parent_id",
            "child.pid [= seq.parent_id",
        }
        assert not ev.false_positives
        assert ev.precision == 1.0

    def test_genuine_false_positive(self):
        inds = INDSet([IND(CHILD_PID, PARENT_ID), IND(OTHER, PARENT_ID)])
        ev = evaluate_against_gold(inds, [FK_CHILD])
        assert len(ev.false_positives) == 1
        assert ev.precision == 0.5

    def test_transitive_closure_of_declared_fks(self):
        # a -> b declared, b -> c declared; discovered a -> c is implied.
        a, b, c = (AttributeRef(t, "x") for t in "abc")
        gold = [ForeignKey("a", "x", "b", "x"), ForeignKey("b", "x", "c", "x")]
        inds = INDSet([IND(a, b), IND(b, c), IND(a, c)])
        ev = evaluate_against_gold(inds, gold)
        assert len(ev.matched) == 2
        assert ev.implied == [IND(a, c)]

    def test_empty_everything(self):
        ev = evaluate_against_gold(INDSet(), [])
        assert ev.recall == 1.0
        assert ev.precision == 1.0


def make_stats(ref, distinct, nulls=0, unique=False, dtype=DataType.INTEGER):
    return ColumnStats(
        ref=ref,
        dtype=dtype,
        row_count=distinct + nulls,
        null_count=nulls,
        distinct_count=distinct,
        min_value="1",
        max_value="9",
        min_length=1,
        max_length=1,
    )


class TestRanking:
    @pytest.fixture()
    def stats(self):
        return {
            PARENT_ID: make_stats(PARENT_ID, 100, unique=True),
            CHILD_PID: make_stats(CHILD_PID, 80),
            OTHER: make_stats(OTHER, 5),
        }

    def _fix_unique(self, stats):
        # make_stats can't mark uniqueness directly; distinct == non-null does.
        return stats

    def test_name_affinity_boosts_matching_names(self, stats):
        inds = INDSet([IND(CHILD_PID, PARENT_ID), IND(OTHER, PARENT_ID)])
        guesses = rank_fk_candidates(inds, stats)
        assert guesses[0].ind == IND(CHILD_PID, PARENT_ID)
        assert guesses[0].score > guesses[1].score

    def test_min_score_filters(self, stats):
        inds = INDSet([IND(OTHER, PARENT_ID)])
        all_guesses = rank_fk_candidates(inds, stats, min_score=0.0)
        assert len(all_guesses) == 1
        none = rank_fk_candidates(inds, stats, min_score=0.99)
        assert none == []

    def test_coverage_component(self, stats):
        inds = INDSet([IND(CHILD_PID, PARENT_ID)])
        guess = rank_fk_candidates(inds, stats)[0]
        assert guess.coverage == pytest.approx(0.8)

    def test_referenced_key_component(self, stats):
        inds = INDSet([IND(CHILD_PID, PARENT_ID)])
        guess = rank_fk_candidates(inds, stats)[0]
        assert guess.referenced_is_key

    def test_deterministic_order(self, stats):
        inds = INDSet([IND(CHILD_PID, PARENT_ID), IND(OTHER, PARENT_ID)])
        first = rank_fk_candidates(inds, stats)
        second = rank_fk_candidates(inds, stats)
        assert [g.ind for g in first] == [g.ind for g in second]

"""Mutation-equivalence stress harness for incremental discovery.

The tentpole contract: an ``incremental=True`` run given the previous
round's result must produce answers **byte-identical** to a fresh full run
over the mutated database — less work, same bytes.  The harness drives a
plain-dict *model* of a database through seeded random mutation vectors
(append/update/delete rows, add/drop columns), materialises it each round,
and diffs the incremental chain against an independent full run:

* a fixed small matrix (workers {1, 2, 4} × the storage variants —
  v1 text, v2 binary, v3 compressed binary) over one mutation script;
* a seeded random sweep: each seed derives the starting database, the
  config vector (workers, spool variant, sampling, ``reuse_spool``) *and*
  the mutation script; the seed and vector are printed on failure so any
  counterexample replays with ``pytest -k <seed>``;
* a miss-then-partial-hit spool-cache round: a one-column edit must adopt
  every unchanged column's value file from the stale cache entry instead
  of re-exporting it;
* the fault matrix: a worker killed mid-delta-validation must requeue and
  converge byte-exactly; a crash-looping delta chunk must fail loudly
  without poisoning the prior it was planned from.
"""

from __future__ import annotations

import json
import random

import pytest

from seeded_dbs import STRING_POOL
from test_validator_agreement import SPOOL_VARIANTS

from repro.core.candidates import PretestConfig
from repro.core.runner import DiscoveryConfig, DiscoverySession, discover_inds
from repro.db import Column, Database, DataType, TableSchema
from repro.errors import DiscoveryError
from repro.obs.metrics import get_registry
from repro.parallel.pool import WorkerPool

#: Fixed seed list: CI replays exactly these, failures print the seed.
STRESS_SEEDS = tuple(range(10))

WORKER_COUNTS = (1, 2, 4)

#: Mutation kinds the scripts draw from, weighted toward row edits (the
#: common case) but always exercising schema churn across a sweep.
MUTATION_KINDS = (
    "append-row",
    "append-row",
    "update-cell",
    "update-cell",
    "delete-row",
    "add-column",
    "drop-column",
)


def _delta_view(result_dict: dict) -> dict:
    """``to_dict()`` minus work accounting — what must match byte-for-byte.

    A delta run legitimately does *less work* than a full run: it validates
    fewer candidates, exports fewer files, reuses spool-cache entries.  So
    everything that counts work is popped — wall-clock ``timings``, the
    whole ``validator`` counter block, ``pool``, ``overlap``,
    ``engine_choice``, export counters, cache-hit flags, the echoed worker
    count, the additive ``trace`` and the ``delta`` accounting itself.
    Everything that *is an answer* stays: the satisfied set, candidate and
    pretest counts, sampling refutations, transitivity inferences.
    """
    view = json.loads(json.dumps(result_dict))
    for key in (
        "timings",
        "validator",
        "pool",
        "overlap",
        "engine_choice",
        "export_values_scanned",
        "export_values_written",
        "spool_cache_hit",
        "export_skipped",
        "validation_workers",
        "delta",
        "trace",
    ):
        view.pop(key, None)
    return view


def _random_value(rng: random.Random, dtype: str):
    if rng.random() < 0.15:
        return None
    if dtype == "integer":
        return rng.randint(0, 12)
    return rng.choice(STRING_POOL)


def _initial_model(rng: random.Random) -> dict:
    """A mutable plain-dict database model; tables keep insertion order.

    Shape mirrors :func:`seeded_dbs.build_random_db`: 1-3 tables, each
    with a unique integer ``id`` drawn from overlapping ranges plus 1-3
    messy payload columns — enough collisions for satisfied INDs and
    sampling refutations to arise.
    """
    model = {}
    for t in range(rng.randint(1, 3)):
        columns = [("id", "integer")]
        columns += [
            (f"c{i}", rng.choice(("integer", "varchar")))
            for i in range(rng.randint(1, 3))
        ]
        offset = rng.choice([0, 0, 3, 10])
        rows = []
        count = rng.randint(2, 20)
        for row_index in range(count):
            row = {"id": offset + row_index}
            for name, dtype in columns[1:]:
                row[name] = _random_value(rng, dtype)
            rows.append(row)
        model[f"t{t}"] = {
            "columns": columns,
            "rows": rows,
            "next_id": offset + count,
            "next_col": 0,
        }
    return model


def _mutate(model: dict, rng: random.Random) -> str:
    """Apply one random mutation in place; returns a replay label.

    ``id`` columns are never updated or dropped and appended rows take the
    table's next fresh id, so the unique-column invariant the candidate
    generator relies on survives every script.
    """
    kind = rng.choice(MUTATION_KINDS)
    table_name = rng.choice(sorted(model))
    spec = model[table_name]
    payload_columns = [name for name, _ in spec["columns"] if name != "id"]
    if kind == "append-row":
        row = {"id": spec["next_id"]}
        spec["next_id"] += 1
        for name, dtype in spec["columns"][1:]:
            row[name] = _random_value(rng, dtype)
        spec["rows"].append(row)
    elif kind == "update-cell" and spec["rows"] and payload_columns:
        row = rng.choice(spec["rows"])
        name = rng.choice(payload_columns)
        dtype = dict(spec["columns"])[name]
        row[name] = _random_value(rng, dtype)
    elif kind == "delete-row" and spec["rows"]:
        spec["rows"].pop(rng.randrange(len(spec["rows"])))
    elif kind == "add-column":
        name = f"x{spec['next_col']}"
        spec["next_col"] += 1
        dtype = rng.choice(("integer", "varchar"))
        spec["columns"].append((name, dtype))
        for row in spec["rows"]:
            row[name] = _random_value(rng, dtype)
    elif kind == "drop-column" and len(payload_columns) > 1:
        name = rng.choice(payload_columns)
        spec["columns"] = [c for c in spec["columns"] if c[0] != name]
        for row in spec["rows"]:
            row.pop(name, None)
    else:
        kind = "no-op"  # mutation not applicable to the drawn table
    return f"{kind}@{table_name}"


def _materialise(model: dict, name: str) -> Database:
    """Build a fresh :class:`Database` from the model's current state."""
    db = Database(name)
    for table_name, spec in model.items():
        columns = [
            Column(
                cname,
                DataType.INTEGER if dtype == "integer" else DataType.VARCHAR,
                unique=(cname == "id"),
            )
            for cname, dtype in spec["columns"]
        ]
        table = db.create_table(TableSchema(table_name, columns))
        for row in spec["rows"]:
            table.insert(dict(row))
    return db


def _stress_config(**overrides) -> DiscoveryConfig:
    defaults = dict(
        strategy="merge-single-pass",
        spool_block_size=3,
        sampling_size=2,
        pretests=PretestConfig(cardinality=True, max_value=False),
    )
    defaults.update(overrides)
    return DiscoveryConfig(**defaults)


class TestMutationMatrix:
    """Fixed matrix: every worker count × every storage variant, one script."""

    @pytest.mark.parametrize("variant", SPOOL_VARIANTS)
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_incremental_equals_full_after_each_mutation(
        self, workers, variant
    ):
        spool_format, compression, mmap_reads = variant
        rng = random.Random(3)
        model = _initial_model(rng)
        config = _stress_config(
            spool_format=spool_format,
            spool_compression=compression,
            mmap_reads=mmap_reads,
            validation_workers=workers,
            incremental=True,
        )
        full_config = _stress_config(
            spool_format=spool_format,
            spool_compression=compression,
            mmap_reads=mmap_reads,
            validation_workers=workers,
        )
        with DiscoverySession(config) as session:
            for round_index in range(3):
                if round_index:
                    label = _mutate(model, rng)
                else:
                    label = "initial"
                db = _materialise(model, "matrix")
                incremental = session.discover(db)
                full = discover_inds(_materialise(model, "matrix"), full_config)
                context = (
                    f"round {round_index} ({label}) diverged at "
                    f"{workers} workers, {variant} spools"
                )
                assert _delta_view(incremental.to_dict()) == _delta_view(
                    full.to_dict()
                ), context
                assert incremental.delta is not None, context
                if round_index == 0:
                    assert incremental.delta == {
                        "mode": "full",
                        "reason": "no-prior",
                    }, context
                else:
                    assert incremental.delta["mode"] == "delta", context
                assert "delta" not in full.to_dict(), context


class TestMutationStressSweep:
    """Seeded sweep: random database, config vector AND mutation script."""

    @staticmethod
    def _config_vector(seed: int) -> dict:
        rng = random.Random(seed ^ 0x17C)
        spool_format, compression, mmap_reads = rng.choice(SPOOL_VARIANTS)
        return {
            "workers": rng.choice(WORKER_COUNTS),
            "spool_format": spool_format,
            "compression": compression,
            "mmap_reads": mmap_reads,
            "sampling": rng.choice((0, 2, 3)),
            "reuse_spool": rng.random() < 0.4,
        }

    @pytest.mark.parametrize("seed", STRESS_SEEDS)
    def test_mutation_chain_stays_byte_exact(self, seed, tmp_path):
        vector = self._config_vector(seed)
        rng = random.Random(seed * 7919 + 1)
        model = _initial_model(rng)
        kwargs = dict(
            spool_format=vector["spool_format"],
            spool_compression=vector["compression"],
            mmap_reads=vector["mmap_reads"],
            sampling_size=vector["sampling"],
            validation_workers=vector["workers"],
            reuse_spool=vector["reuse_spool"],
        )
        incremental_config = _stress_config(
            incremental=True, cache_dir=str(tmp_path / "inc"), **kwargs
        )
        full_config = _stress_config(
            cache_dir=str(tmp_path / "full"), **kwargs
        )
        script = []
        with DiscoverySession(incremental_config) as session:
            for round_index in range(4):
                if round_index:
                    script.append(_mutate(model, rng))
                db = _materialise(model, f"mut{seed}")
                incremental = session.discover(db)
                full = discover_inds(
                    _materialise(model, f"mut{seed}"), full_config
                )
                context = (
                    f"stress seed {seed} round {round_index} diverged — "
                    f"vector {vector!r}, script {script!r}"
                )
                assert _delta_view(incremental.to_dict()) == _delta_view(
                    full.to_dict()
                ), context
                delta = incremental.delta
                assert delta is not None, context
                if round_index == 0:
                    assert delta == {"mode": "full", "reason": "no-prior"}, (
                        context
                    )
                else:
                    assert delta["mode"] == "delta", context
                    assert (
                        delta["candidates_revalidated"]
                        + delta["decisions_reused"]
                        == full.candidates_after_pretests
                    ), context


class TestPartialCacheReuse:
    """Miss-then-partial-hit: a stale entry donates its unchanged columns."""

    def test_one_column_edit_adopts_the_rest(self, tmp_path):
        rng = random.Random(11)
        model = _initial_model(rng)
        config = _stress_config(
            incremental=True,
            reuse_spool=True,
            cache_dir=str(tmp_path / "cache"),
        )
        with DiscoverySession(config) as session:
            cold = session.discover(_materialise(model, "partial"))
            assert cold.spool_cache_hit is False
            # Mutate exactly one payload cell: every other column's value
            # file in the (now stale) cache entry is still byte-valid.
            table = sorted(model)[0]
            spec = model[table]
            target = next(n for n, _ in spec["columns"] if n != "id")
            dtype = dict(spec["columns"])[target]
            old = spec["rows"][0][target]
            fresh = 99 if dtype == "integer" else "fresh-value"
            assert fresh != old
            spec["rows"][0][target] = fresh
            before = get_registry().snapshot()["counters"]
            warm = session.discover(_materialise(model, "partial"))
            after = get_registry().snapshot()["counters"]
            assert warm.spool_cache_hit is False  # catalog hash moved
            assert warm.delta["mode"] == "delta"
            assert warm.delta["attributes_changed"] == 1
            hits = after.get("spool_cache_partial_hits_total", 0) - before.get(
                "spool_cache_partial_hits_total", 0
            )
            reused = after.get(
                "spool_cache_files_reused_total", 0
            ) - before.get("spool_cache_files_reused_total", 0)
            assert hits == 1
            assert reused >= 1
            full = discover_inds(
                _materialise(model, "partial"),
                _stress_config(
                    reuse_spool=True, cache_dir=str(tmp_path / "full-cache")
                ),
            )
            assert _delta_view(warm.to_dict()) == _delta_view(full.to_dict())


class TestDeltaFaults:
    """Worker death inside the delta-validation slice: converge or fail loudly."""

    @staticmethod
    def _fault_model() -> dict:
        rng = random.Random(5)
        model = _initial_model(rng)
        # Guarantee the fault target exists with integer payloads that
        # overlap the id ranges: t0.c0 sits in several candidate pairs.
        model.setdefault(
            "t0",
            {
                "columns": [("id", "integer"), ("c0", "integer")],
                "rows": [{"id": i, "c0": i % 5} for i in range(8)],
                "next_id": 8,
                "next_col": 0,
            },
        )
        return model

    def test_worker_death_mid_delta_validation_converges(
        self, tmp_path, monkeypatch
    ):
        model = self._fault_model()
        config = _stress_config(
            strategy="brute-force",
            sampling_size=0,
            incremental=True,
            validation_workers=2,
        )
        prior = discover_inds(_materialise(model, "faulty"), config)
        spec = model["t0"]
        column = next(n for n, _ in spec["columns"] if n != "id")
        for row in spec["rows"]:
            if row[column] is not None:
                row[column] = row[column] + 1 if isinstance(
                    row[column], int
                ) else row[column] + "!"
        db = _materialise(model, "faulty")
        expected = _delta_view(
            discover_inds(
                db,
                _stress_config(
                    strategy="brute-force",
                    sampling_size=0,
                    validation_workers=2,
                ),
            ).to_dict()
        )
        monkeypatch.setenv("REPRO_POOL_FAULT_ATTR", f"t0.{column}")
        monkeypatch.setenv("REPRO_POOL_FAULT_ONCE_DIR", str(tmp_path))
        with WorkerPool(2) as pool:
            result = discover_inds(db, config, pool=pool, prior=prior)
            assert pool.stats.tasks_requeued >= 1
            assert pool.stats.workers_replaced >= 1
        assert result.delta["mode"] == "delta"
        assert result.delta["candidates_revalidated"] >= 1
        assert _delta_view(result.to_dict()) == expected

    def test_crash_looping_delta_chunk_fails_without_poisoning_prior(
        self, monkeypatch
    ):
        """No ONCE marker: every worker that picks the chunk dies.

        The job must fail with the established loud error — and the prior
        it was planned from must stay fully usable: the same incremental
        run retried after the fault clears converges byte-exactly.
        """
        model = self._fault_model()
        config = _stress_config(
            strategy="brute-force",
            sampling_size=0,
            incremental=True,
            validation_workers=2,
        )
        prior = discover_inds(_materialise(model, "faulty"), config)
        prior_view = _delta_view(prior.to_dict())
        spec = model["t0"]
        column = next(n for n, _ in spec["columns"] if n != "id")
        for row in spec["rows"]:
            if row[column] is not None:
                row[column] = row[column] + 1 if isinstance(
                    row[column], int
                ) else row[column] + "!"
        db = _materialise(model, "faulty")
        expected = _delta_view(
            discover_inds(
                db,
                _stress_config(
                    strategy="brute-force",
                    sampling_size=0,
                    validation_workers=2,
                ),
            ).to_dict()
        )
        monkeypatch.setenv("REPRO_POOL_FAULT_ATTR", f"t0.{column}")
        with WorkerPool(2) as pool:
            with pytest.raises(DiscoveryError, match="killed its worker"):
                discover_inds(db, config, pool=pool, prior=prior)
            monkeypatch.delenv("REPRO_POOL_FAULT_ATTR")
            # The failed run must not have mutated the prior's carriers.
            assert _delta_view(prior.to_dict()) == prior_view
            result = discover_inds(db, config, pool=pool, prior=prior)
        assert result.delta["mode"] == "delta"
        assert _delta_view(result.to_dict()) == expected

"""Randomized stress-agreement harness for the overlapped (barrier-free) pipeline.

The tentpole contract: ``DiscoveryConfig(overlap=True)`` plans export,
sampling pretest and validation as **one dependency-scheduled task graph**
on a single worker pool — and everything except wall clock must be
byte-identical to the barriered pipeline.  Two layers of defence:

* a fixed small matrix (workers {1, 2, 4} × both spool formats × both
  fixed engines) against the plain *sequential* pipeline — the paper's
  reference semantics;
* a seeded random sweep: each seed derives a database **and** a config
  vector (workers, spool format, strategy incl. adaptive, sampling size,
  ``reuse_spool``, ``range_split``), runs the same vector barriered and
  overlapped, and diffs the full ``to_dict()`` view.  The seed is printed
  on failure so any counterexample replays with
  ``pytest -k <seed> tests/parallel/test_overlap_stress.py``.

Plus the fault matrix: a worker killed while export, pretest and
validation tasks are simultaneously in flight must requeue and converge
byte-exactly with no orphan trace spans; a crash-looping graph task must
fail loudly (never wedge the held dependents) and leave the pool usable.
"""

from __future__ import annotations

import json
import random

import pytest

from seeded_dbs import build_db, build_random_db
from test_validator_agreement import SPOOL_VARIANTS, _assert_well_formed_trace

from repro.core.candidates import PretestConfig
from repro.core.runner import DiscoveryConfig, discover_inds
from repro.errors import DiscoveryError
from repro.obs.trace import coverage
from repro.parallel.pool import WorkerPool

#: Fixed seed list: CI replays exactly these, failures print the seed.
STRESS_SEEDS = tuple(range(10))

WORKER_COUNTS = (1, 2, 4)
SPOOL_FORMATS = ("text", "binary")


def _stress_view(result_dict: dict) -> dict:
    """``to_dict()`` minus scheduling noise — what must match byte-for-byte.

    Popped (and nothing else): wall-clock ``timings``, per-job ``pool``
    counters, the additive ``trace`` and ``overlap`` documents, the
    worker count echoed from the config, the engine's ``extra``/
    ``elapsed_seconds``/``peak_open_files`` diagnostics, and the measured
    halves of ``engine_choice``.  Decisions, satisfied sets, pretest and
    sampling reductions, export counters, summed I/O and the routed
    engine name all stay in.
    """
    view = json.loads(json.dumps(result_dict))
    view.pop("timings")
    view.pop("pool")
    view.pop("trace", None)
    view.pop("overlap")
    view.pop("validation_workers")
    view["validator"].pop("elapsed_seconds")
    view["validator"].pop("extra")
    view["validator"].pop("peak_open_files")
    if view.get("engine_choice"):
        view["engine_choice"].pop("routing_seconds", None)
        view["engine_choice"].pop("actual_seconds", None)
    return view


def _config_vector(seed: int) -> dict:
    """Derive a full config vector (plus db seed) from one stress seed."""
    rng = random.Random(seed ^ 0xA5A5)
    strategy = rng.choice(("brute-force", "merge-single-pass", "adaptive"))
    workers = rng.choice(WORKER_COUNTS)
    range_split = 0
    if (
        strategy == "merge-single-pass"
        and workers > 1
        and rng.random() < 0.4
    ):
        range_split = 2
    spool_format = rng.choice(SPOOL_FORMATS)
    compression = "none"
    mmap_reads: bool | str = "auto"
    if spool_format == "binary":
        compression = rng.choice(("none", "zlib"))
        mmap_reads = rng.choice((True, False, "auto"))
    return {
        "db_seed": rng.randrange(1000),
        "strategy": strategy,
        "workers": workers,
        "spool_format": spool_format,
        "compression": compression,
        "mmap_reads": mmap_reads,
        "sampling": rng.choice((0, 2, 3)),
        "reuse_spool": rng.random() < 0.3,
        "range_split": range_split,
    }


def _discovery_config(vector: dict, *, overlap: bool, cache_dir) -> DiscoveryConfig:
    """The barriered twin differs from the overlapped one ONLY in scheduling.

    The baseline keeps every phase on the pool (``parallel_export`` /
    ``parallel_pretest``) so owned-pool handling, cache-hit bookkeeping and
    task-kind coverage are identical on both sides — barriers in, barriers
    out is the *only* delta under test.  ``cache_dir`` is always a fresh
    per-side directory: the two runs must not share spool-cache entries or
    calibration state through the user-level default cache.
    """
    return DiscoveryConfig(
        strategy=vector["strategy"],
        spool_format=vector["spool_format"],
        spool_compression=vector["compression"],
        mmap_reads=vector["mmap_reads"],
        spool_block_size=3,
        sampling_size=vector["sampling"],
        pretests=PretestConfig(cardinality=True, max_value=False),
        validation_workers=vector["workers"],
        range_split=vector["range_split"],
        reuse_spool=vector["reuse_spool"],
        cache_dir=str(cache_dir),
        overlap=overlap,
        parallel_export=not overlap,
        parallel_pretest=not overlap and vector["sampling"] > 0,
    )


class TestOverlapMatrix:
    """Fixed matrix vs the *sequential* pipeline: the paper's semantics."""

    @pytest.mark.parametrize("variant", SPOOL_VARIANTS)
    @pytest.mark.parametrize("strategy", ("brute-force", "merge-single-pass"))
    def test_overlap_equals_sequential_across_worker_counts(
        self, strategy, variant
    ):
        spool_format, compression, mmap_reads = variant
        db = build_random_db(5)
        sequential = discover_inds(
            db,
            DiscoveryConfig(
                strategy=strategy,
                spool_format=spool_format,
                spool_compression=compression,
                mmap_reads=mmap_reads,
                spool_block_size=3,
                sampling_size=2,
                pretests=PretestConfig(cardinality=True, max_value=False),
            ),
        )
        assert sequential.sampling_refuted > 0, (
            "seed must exercise the pretest for the matrix to mean anything"
        )
        assert sequential.overlap is None
        expected = _stress_view(sequential.to_dict())
        for workers in WORKER_COUNTS:
            overlapped = discover_inds(
                db,
                DiscoveryConfig(
                    strategy=strategy,
                    spool_format=spool_format,
                    spool_compression=compression,
                    mmap_reads=mmap_reads,
                    spool_block_size=3,
                    sampling_size=2,
                    pretests=PretestConfig(
                        cardinality=True, max_value=False
                    ),
                    validation_workers=workers,
                    overlap=True,
                ),
            )
            assert _stress_view(overlapped.to_dict()) == expected, (
                f"overlapped pipeline diverges from sequential at "
                f"{workers} workers ({strategy}, {variant} spools)"
            )
            doc = overlapped.overlap
            assert doc is not None and doc["mode"] == "full"
            assert doc["nodes"] == sum(doc["tasks_by_phase"].values())
            assert doc["tasks_by_phase"]["validate"] >= 1
            # Pretest verdicts gated validation dynamically: with refuted
            # candidates present, either whole chunks were cancelled or
            # their specs were rewritten — never validated and discarded.
            refuted = overlapped.sampling_refuted
            tested = overlapped.validator_stats.candidates_tested
            assert tested == sequential.validator_stats.candidates_tested
            assert refuted == sequential.sampling_refuted


class TestOverlapStressAgreement:
    """Seeded random config vectors: barriered vs overlapped, byte-exact."""

    @pytest.mark.parametrize("seed", STRESS_SEEDS)
    def test_random_vector_agrees(self, seed, tmp_path):
        vector = _config_vector(seed)
        db = build_random_db(vector["db_seed"])
        rounds = 2 if vector["reuse_spool"] else 1  # cold miss, then warm hit
        for round_index in range(rounds):
            barriered = discover_inds(
                db,
                _discovery_config(
                    vector, overlap=False, cache_dir=tmp_path / "cache-a"
                ),
            )
            overlapped = discover_inds(
                db,
                _discovery_config(
                    vector, overlap=True, cache_dir=tmp_path / "cache-b"
                ),
            )
            context = (
                f"stress seed {seed} round {round_index} diverged — replay "
                f"with this vector: {vector!r}"
            )
            assert (
                _stress_view(overlapped.to_dict())
                == _stress_view(barriered.to_dict())
            ), context
            expect_hit = vector["reuse_spool"] and round_index == 1
            assert barriered.spool_cache_hit is expect_hit, context
            assert overlapped.spool_cache_hit is expect_hit, context
            assert barriered.overlap is None, context
            doc = overlapped.overlap
            assert doc is not None, context
            full = (
                vector["strategy"] in ("brute-force", "merge-single-pass")
                and vector["range_split"] == 0
            )
            assert doc["mode"] == ("full" if full else "staged"), context
            if expect_hit:
                assert doc["tasks_by_phase"]["export"] == 0, context

    def test_traced_overlap_is_well_formed_and_covered(self):
        """Spans released while other phases run still adopt cleanly."""
        db = build_random_db(0)
        result = discover_inds(
            db,
            DiscoveryConfig(
                strategy="merge-single-pass",
                sampling_size=2,
                pretests=PretestConfig(cardinality=True, max_value=False),
                validation_workers=4,
                overlap=True,
                trace=True,
            ),
        )
        _assert_well_formed_trace(result.trace)
        covered = coverage(result.trace)
        assert covered >= 0.9, f"overlapped trace covers only {covered:.1%}"
        # Tracing is observationally free here too.
        untraced = discover_inds(
            db,
            DiscoveryConfig(
                strategy="merge-single-pass",
                sampling_size=2,
                pretests=PretestConfig(cardinality=True, max_value=False),
                validation_workers=4,
                overlap=True,
            ),
        )
        assert _stress_view(result.to_dict()) == _stress_view(
            untraced.to_dict()
        )


def _fault_config(**overrides) -> DiscoveryConfig:
    defaults = dict(
        strategy="brute-force",
        spool_format="binary",
        spool_block_size=4,
        pretests=PretestConfig(cardinality=True, max_value=False),
        validation_workers=2,
        overlap=True,
    )
    defaults.update(overrides)
    return DiscoveryConfig(**defaults)


class TestOverlapFaults:
    """Worker death with the whole graph in flight: converge or fail loudly."""

    def test_worker_death_mid_export_with_held_dependents(
        self, tmp_path, monkeypatch
    ):
        """Kill during export while pretest + validation nodes are held.

        ``t0.c0`` sits in an export unit, in pretest chunks and in
        validation chunks, so the one-shot fault fires on the first task
        that touches it — with every downstream node still waiting on
        dependency edges.  The requeued task must complete on the
        replacement worker and the drained graph must match the sequential
        pipeline byte-for-byte, with no orphan trace spans.
        """
        db = build_db()
        expected = _stress_view(
            discover_inds(
                db, _fault_config(overlap=False, sampling_size=2)
            ).to_dict()
        )
        monkeypatch.setenv("REPRO_POOL_FAULT_ATTR", "t0.c0")
        monkeypatch.setenv("REPRO_POOL_FAULT_ONCE_DIR", str(tmp_path))
        with WorkerPool(2) as pool:
            result = discover_inds(
                db, _fault_config(sampling_size=2, trace=True), pool=pool
            )
            assert pool.stats.tasks_requeued >= 1
            assert pool.stats.workers_replaced >= 1
        assert _stress_view(result.to_dict()) == expected
        _assert_well_formed_trace(result.trace)
        # Done-dedup: exactly one span per graph node survives the requeue.
        task_spans = [
            s for s in result.trace["spans"] if s["name"].startswith("task:")
        ]
        assert len(task_spans) == result.overlap["nodes"] - result.overlap[
            "cancelled"
        ]

    def test_worker_death_mid_pretest_with_validation_held(
        self, tmp_path, monkeypatch
    ):
        """Warm spool cache first, so the graph starts at the pretest layer."""
        db = build_db()
        cache = tmp_path / "cache"
        warm = _fault_config(
            sampling_size=2, reuse_spool=True, cache_dir=str(cache)
        )
        discover_inds(db, warm)  # cold run populates the cache
        expected = _stress_view(discover_inds(db, warm).to_dict())  # warm twin
        monkeypatch.setenv("REPRO_POOL_FAULT_ATTR", "t0.c0")
        monkeypatch.setenv("REPRO_POOL_FAULT_ONCE_DIR", str(tmp_path))
        with WorkerPool(2) as pool:
            result = discover_inds(db, warm, pool=pool)
            assert pool.stats.tasks_requeued >= 1
        assert result.spool_cache_hit is True
        assert result.overlap["tasks_by_phase"]["export"] == 0
        assert _stress_view(result.to_dict()) == expected

    def test_worker_death_mid_validation(self, tmp_path, monkeypatch):
        """Sampling off + cache hit: the graph is pure validation nodes."""
        db = build_db()
        cache = tmp_path / "cache"
        warm = _fault_config(reuse_spool=True, cache_dir=str(cache))
        discover_inds(db, warm)  # cold run populates the cache
        expected = _stress_view(discover_inds(db, warm).to_dict())  # warm twin
        monkeypatch.setenv("REPRO_POOL_FAULT_ATTR", "t0.c0")
        monkeypatch.setenv("REPRO_POOL_FAULT_ONCE_DIR", str(tmp_path))
        with WorkerPool(2) as pool:
            result = discover_inds(db, warm, pool=pool)
            assert pool.stats.tasks_requeued >= 1
        assert result.overlap["tasks_by_phase"] == {
            "export": 0,
            "pretest": 0,
            "validate": result.overlap["nodes"],
        }
        assert _stress_view(result.to_dict()) == expected

    def test_crash_looping_graph_task_fails_loudly_not_wedged(
        self, monkeypatch
    ):
        """No ONCE marker: every worker that picks the task dies.

        The requeue cap must fail the *job* with the established error —
        promptly, leaving neither the held dependent nodes nor the pool
        wedged: a clean run on the same fleet right after must succeed.
        """
        db = build_db()
        clean = _stress_view(
            discover_inds(db, _fault_config(sampling_size=2)).to_dict()
        )
        monkeypatch.setenv("REPRO_POOL_FAULT_ATTR", "t0.c0")
        with WorkerPool(2) as pool:
            with pytest.raises(DiscoveryError, match="killed its worker"):
                discover_inds(
                    db, _fault_config(sampling_size=2), pool=pool
                )
            monkeypatch.delenv("REPRO_POOL_FAULT_ATTR")
            result = discover_inds(
                db, _fault_config(sampling_size=2), pool=pool
            )
        assert _stress_view(result.to_dict()) == clean

"""Regression tests: everything a worker process receives must re-open by path.

Worker processes must never operate on inherited file handles (a shared file
offset corrupts both sides), and must never trust another process's salted
hashes.  These tests pin the pickling contract of :class:`SpoolDirectory`,
the file cursors, and :class:`AttributeRef`.
"""

from __future__ import annotations

import pickle

import pytest

from repro.db.schema import AttributeRef
from repro.errors import SpoolError
from repro.storage.sorted_sets import SpoolDirectory

VALUES = [f"v{i:05d}" for i in range(100)]


def _make_spool(tmp_path, fmt: str) -> SpoolDirectory:
    spool = SpoolDirectory.create(tmp_path / fmt, format=fmt, block_size=7)
    spool.add_values(AttributeRef("t", "a"), VALUES)
    spool.save_index()
    return spool


class TestSpoolDirectoryPickling:
    @pytest.mark.parametrize("fmt", ["text", "binary"])
    def test_roundtrip_reopens_by_path(self, tmp_path, fmt):
        spool = _make_spool(tmp_path, fmt)
        clone = pickle.loads(pickle.dumps(spool))
        assert clone.root == spool.root
        assert clone.format == fmt
        ref = AttributeRef("t", "a")
        assert clone.get(ref).count == 100
        assert clone.get(ref).values() == VALUES
        # The clone owns an independent lock, not the parent's.
        assert clone._lock is not spool._lock  # noqa: SLF001

    def test_unsaved_directory_refuses_to_pickle(self, tmp_path):
        spool = SpoolDirectory.create(tmp_path / "unsaved", format="binary")
        spool.add_values(AttributeRef("t", "a"), ["1"])
        with pytest.raises(SpoolError, match="no saved index"):
            pickle.dumps(spool)


class TestCursorPickling:
    @pytest.mark.parametrize("fmt", ["text", "binary"])
    def test_mid_read_cursor_resumes_at_logical_position(self, tmp_path, fmt):
        spool = _make_spool(tmp_path, fmt)
        cursor = spool.open_cursor(AttributeRef("t", "a"))
        assert cursor.read_batch(33) == VALUES[:33]
        clone = pickle.loads(pickle.dumps(cursor))
        # The clone re-opened the file itself: reading the original does not
        # disturb it and vice versa.
        assert cursor.read_batch(10) == VALUES[33:43]
        assert clone.read_batch(100) == VALUES[33:]
        cursor.close()
        clone.close()

    @pytest.mark.parametrize("fmt", ["text", "binary"])
    def test_closed_cursor_stays_closed(self, tmp_path, fmt):
        spool = _make_spool(tmp_path, fmt)
        cursor = spool.open_cursor(AttributeRef("t", "a"))
        cursor.read_batch(5)
        cursor.close()
        clone = pickle.loads(pickle.dumps(cursor))
        assert not clone.has_next()

    def test_skip_scanned_cursor_refuses_to_pickle(self, tmp_path):
        spool = _make_spool(tmp_path, "binary")
        cursor = spool.open_cursor(AttributeRef("t", "a"))
        assert cursor.skip_blocks_below("v00050") > 0
        with pytest.raises(SpoolError, match="skip-scans"):
            pickle.dumps(cursor)
        cursor.close()

    def test_restored_cursor_carries_no_foreign_stats(self, tmp_path):
        from repro.storage.cursors import IOStats

        spool = _make_spool(tmp_path, "binary")
        io = IOStats()
        cursor = spool.open_cursor(AttributeRef("t", "a"), io)
        cursor.read_batch(10)
        clone = pickle.loads(pickle.dumps(cursor))
        clone.read_batch(10)
        clone.close()
        cursor.close()
        # The parent's counters saw only the parent's reads.
        assert io.items_read == 10
        assert io.files_opened == 1
        assert io.open_files == 0


class TestWarmHandleStaleness:
    """The warm-handle LRU must notice every index rewrite — even sneaky ones.

    A delta re-export rewrites ``index.json`` at the *same path* with
    possibly the same byte size, and back-to-back incremental rounds can
    land inside one filesystem timestamp tick.  The identity stamp is
    ``(mtime_ns, size, inode)``: ``save_index`` publishes via ``os.replace``
    of a fresh temp file, so the inode always moves even when the other two
    collide.
    """

    def test_same_size_same_mtime_rewrite_is_not_warm(self, tmp_path):
        import os
        from collections import OrderedDict

        from repro.parallel.pool import _open_warm

        spool = _make_spool(tmp_path, "binary")
        index = os.path.join(str(spool.root), "index.json")
        handles: OrderedDict = OrderedDict()
        _, warm = _open_warm(handles, str(spool.root))
        assert warm is False
        _, warm = _open_warm(handles, str(spool.root))
        assert warm is True

        before = os.stat(index)
        spool.save_index()  # byte-identical rewrite: same size, new inode
        # Force the worst case: pin mtime (and atime) back to the original
        # rewrite-within-one-clock-tick values.
        os.utime(index, ns=(before.st_atime_ns, before.st_mtime_ns))
        after = os.stat(index)
        assert after.st_size == before.st_size
        assert after.st_mtime_ns == before.st_mtime_ns
        assert after.st_ino != before.st_ino, (
            "save_index must publish a fresh inode via os.replace"
        )

        reopened, warm = _open_warm(handles, str(spool.root))
        assert warm is False, (
            "stale parsed index served as warm despite the rewrite"
        )
        # The replacement handle is cached under the new stamp.
        _, warm = _open_warm(handles, str(spool.root))
        assert warm is True


class TestAttributeRefPickling:
    def test_cached_hash_never_crosses_the_boundary(self):
        ref = AttributeRef("table", "column")
        hash(ref)  # populate the per-process cache
        assert "_hash" in ref.__dict__
        clone = pickle.loads(pickle.dumps(ref))
        assert "_hash" not in clone.__dict__
        assert clone == ref
        assert hash(clone) == hash(ref)  # same process, same salt

    def test_candidate_and_nested_refs_roundtrip(self):
        from repro.core.candidates import Candidate

        candidate = Candidate(AttributeRef("a", "b"), AttributeRef("c", "d"))
        hash(candidate.dependent)
        clone = pickle.loads(pickle.dumps(candidate))
        assert clone == candidate
        assert "_hash" not in clone.dependent.__dict__

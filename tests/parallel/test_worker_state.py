"""Regression tests: everything a worker process receives must re-open by path.

Worker processes must never operate on inherited file handles (a shared file
offset corrupts both sides), and must never trust another process's salted
hashes.  These tests pin the pickling contract of :class:`SpoolDirectory`,
the file cursors, and :class:`AttributeRef`.
"""

from __future__ import annotations

import pickle

import pytest

from repro.db.schema import AttributeRef
from repro.errors import SpoolError
from repro.storage.sorted_sets import SpoolDirectory

VALUES = [f"v{i:05d}" for i in range(100)]


def _make_spool(tmp_path, fmt: str) -> SpoolDirectory:
    spool = SpoolDirectory.create(tmp_path / fmt, format=fmt, block_size=7)
    spool.add_values(AttributeRef("t", "a"), VALUES)
    spool.save_index()
    return spool


class TestSpoolDirectoryPickling:
    @pytest.mark.parametrize("fmt", ["text", "binary"])
    def test_roundtrip_reopens_by_path(self, tmp_path, fmt):
        spool = _make_spool(tmp_path, fmt)
        clone = pickle.loads(pickle.dumps(spool))
        assert clone.root == spool.root
        assert clone.format == fmt
        ref = AttributeRef("t", "a")
        assert clone.get(ref).count == 100
        assert clone.get(ref).values() == VALUES
        # The clone owns an independent lock, not the parent's.
        assert clone._lock is not spool._lock  # noqa: SLF001

    def test_unsaved_directory_refuses_to_pickle(self, tmp_path):
        spool = SpoolDirectory.create(tmp_path / "unsaved", format="binary")
        spool.add_values(AttributeRef("t", "a"), ["1"])
        with pytest.raises(SpoolError, match="no saved index"):
            pickle.dumps(spool)


class TestCursorPickling:
    @pytest.mark.parametrize("fmt", ["text", "binary"])
    def test_mid_read_cursor_resumes_at_logical_position(self, tmp_path, fmt):
        spool = _make_spool(tmp_path, fmt)
        cursor = spool.open_cursor(AttributeRef("t", "a"))
        assert cursor.read_batch(33) == VALUES[:33]
        clone = pickle.loads(pickle.dumps(cursor))
        # The clone re-opened the file itself: reading the original does not
        # disturb it and vice versa.
        assert cursor.read_batch(10) == VALUES[33:43]
        assert clone.read_batch(100) == VALUES[33:]
        cursor.close()
        clone.close()

    @pytest.mark.parametrize("fmt", ["text", "binary"])
    def test_closed_cursor_stays_closed(self, tmp_path, fmt):
        spool = _make_spool(tmp_path, fmt)
        cursor = spool.open_cursor(AttributeRef("t", "a"))
        cursor.read_batch(5)
        cursor.close()
        clone = pickle.loads(pickle.dumps(cursor))
        assert not clone.has_next()

    def test_skip_scanned_cursor_refuses_to_pickle(self, tmp_path):
        spool = _make_spool(tmp_path, "binary")
        cursor = spool.open_cursor(AttributeRef("t", "a"))
        assert cursor.skip_blocks_below("v00050") > 0
        with pytest.raises(SpoolError, match="skip-scans"):
            pickle.dumps(cursor)
        cursor.close()

    def test_restored_cursor_carries_no_foreign_stats(self, tmp_path):
        from repro.storage.cursors import IOStats

        spool = _make_spool(tmp_path, "binary")
        io = IOStats()
        cursor = spool.open_cursor(AttributeRef("t", "a"), io)
        cursor.read_batch(10)
        clone = pickle.loads(pickle.dumps(cursor))
        clone.read_batch(10)
        clone.close()
        cursor.close()
        # The parent's counters saw only the parent's reads.
        assert io.items_read == 10
        assert io.files_opened == 1
        assert io.open_files == 0


class TestAttributeRefPickling:
    def test_cached_hash_never_crosses_the_boundary(self):
        ref = AttributeRef("table", "column")
        hash(ref)  # populate the per-process cache
        assert "_hash" in ref.__dict__
        clone = pickle.loads(pickle.dumps(ref))
        assert "_hash" not in clone.__dict__
        assert clone == ref
        assert hash(clone) == hash(ref)  # same process, same salt

    def test_candidate_and_nested_refs_roundtrip(self):
        from repro.core.candidates import Candidate

        candidate = Candidate(AttributeRef("a", "b"), AttributeRef("c", "d"))
        hash(candidate.dependent)
        clone = pickle.loads(pickle.dumps(candidate))
        assert clone == candidate
        assert "_hash" not in clone.dependent.__dict__

"""Unit tests of the parallel engines' building blocks.

The cross-validator agreement of the full engines against the sequential
validators lives in ``tests/test_validator_agreement.py``; this file covers
the pieces in isolation: byte-range partitioning, the range cursor, and the
shard-outcome merge (including its must-fail paths).
"""

from __future__ import annotations

import pytest

from repro.core.candidates import Candidate
from repro.core.stats import ValidatorStats
from repro.db.schema import AttributeRef
from repro.errors import DiscoveryError
from repro.parallel.engine import (
    ProcessPoolValidationEngine,
    ShardOutcome,
    merge_shard_outcomes,
)
from repro.parallel.merge import (
    ByteRangeCursor,
    boundary_string,
    first_byte,
    partition_bounds,
)
from repro.storage.cursors import IOStats, MemoryValueCursor
from repro.storage.sorted_sets import SpoolDirectory


def _cand(dep: str, ref: str) -> Candidate:
    return Candidate(AttributeRef("t", dep), AttributeRef("t", ref))


class TestPartitionBounds:
    def test_tiles_the_byte_space(self):
        for partitions in (1, 2, 3, 4, 7, 16, 256, 1000):
            bounds = partition_bounds(partitions)
            assert bounds[0][0] == 0
            for (_, hi), (lo, _) in zip(bounds, bounds[1:]):
                assert hi == lo
            # Every lead byte a UTF-8 value can start with is covered.
            covered = set()
            for lo, hi in bounds:
                covered.update(range(lo, hi))
            assert set(range(0xF5)) <= covered

    def test_rejects_nonpositive(self):
        with pytest.raises(DiscoveryError):
            partition_bounds(0)


class TestBoundaryString:
    @pytest.mark.parametrize(
        "value",
        ["", "a", "\x00", "zz", "é", "߿", "￿", "\U0001f600", "nul\x00"],
    )
    def test_boundary_splits_exactly_at_first_byte(self, value):
        """boundary(b) <= v  iff  first_byte(v) >= b, for every cut point."""
        fb = first_byte(value)
        for cut in (0, 1, fb, fb + 1, 0x7F, 0x80, 0xC2, 0xE0, 0xF0, 0xF4):
            boundary = boundary_string(cut)
            if boundary is None:
                assert fb < cut
                continue
            assert (boundary <= value) == (fb >= cut), (value, cut, boundary)

    def test_extremes(self):
        assert boundary_string(0) == ""
        assert boundary_string(0x100) is None
        assert boundary_string(0xF5) is None


class TestByteRangeCursor:
    VALUES = ["", "0", "9", "A", "a", "z", "é", "一", "\U0001f600"]

    def test_partitions_tile_the_value_set(self):
        for partitions in (1, 2, 4, 16):
            out: list[str] = []
            for lo, hi in partition_bounds(partitions):
                cursor = ByteRangeCursor(
                    MemoryValueCursor(self.VALUES),
                    boundary_string(lo),
                    boundary_string(hi) if hi <= 0xF4 else None,
                )
                out.extend(cursor.read_batch(100))
                cursor.close()
            assert out == self.VALUES, f"{partitions} partitions lose values"

    def test_matches_first_byte_filter(self):
        for lo, hi in partition_bounds(8):
            expected = [v for v in self.VALUES if lo <= first_byte(v) < hi]
            cursor = ByteRangeCursor(
                MemoryValueCursor(self.VALUES),
                boundary_string(lo),
                boundary_string(hi) if hi <= 0xF4 else None,
            )
            assert cursor.read_batch(100) == expected
            cursor.close()

    def test_uses_skip_scan_to_reach_range_start(self, tmp_path):
        spool = SpoolDirectory.create(tmp_path, format="binary", block_size=4)
        ref = AttributeRef("t", "a")
        spool.add_values(ref, [f"{i:04d}" for i in range(64)])
        io = IOStats()
        inner = spool.open_cursor(ref, io)
        cursor = ByteRangeCursor(inner, "z", None)  # empty range at the tail
        assert cursor.read_batch(10) == []
        cursor.close()
        # Every block's recorded max is below "z": all 16 frames are seeked
        # past without decoding, and nothing is ever logically read.
        assert io.blocks_skipped == 16
        assert io.values_skipped == 64
        assert io.items_read == 0


class TestMergeShardOutcomes:
    def _outcome(self, index, decisions, items=0):
        stats = ValidatorStats(validator="brute-force", items_read=items)
        return ShardOutcome(
            shard_index=index, decisions=decisions, vacuous=set(), stats=stats
        )

    def test_merges_in_candidate_order_and_sums_io(self):
        a, b, c = _cand("a", "x"), _cand("b", "x"), _cand("c", "x")
        result = merge_shard_outcomes(
            [a, b, c],
            [
                self._outcome(1, {b: False}, items=5),
                self._outcome(0, {a: True, c: True}, items=7),
            ],
            "brute-force",
        )
        assert result.decisions == {a: True, b: False, c: True}
        assert [str(i) for i in result.satisfied] == [str(a.as_ind()), str(c.as_ind())]
        assert result.stats.items_read == 12
        assert result.stats.satisfied_count == 2
        assert result.stats.refuted_count == 1
        assert result.stats.candidates_total == 3

    def test_rejects_double_and_missing_coverage(self):
        a, b = _cand("a", "x"), _cand("b", "x")
        with pytest.raises(DiscoveryError, match="two shards"):
            merge_shard_outcomes(
                [a],
                [self._outcome(0, {a: True}), self._outcome(1, {a: True})],
                "brute-force",
            )
        with pytest.raises(DiscoveryError, match="no shard"):
            merge_shard_outcomes(
                [a, b], [self._outcome(0, {a: True})], "brute-force"
            )


class TestEngineGuards:
    def test_engine_requires_saved_index(self, tmp_path):
        spool = SpoolDirectory.create(tmp_path / "s", format="binary")
        ref_a, ref_b = AttributeRef("t", "a"), AttributeRef("t", "b")
        spool.add_values(ref_a, ["1"])
        spool.add_values(ref_b, ["1", "2"])
        # No save_index(): workers could never re-open this directory.
        from repro.errors import SpoolError

        engine = ProcessPoolValidationEngine(spool, workers=2)
        with pytest.raises(SpoolError, match="no saved index"):
            engine.validate([Candidate(ref_a, ref_b), Candidate(ref_b, ref_a)])

    def test_rejects_nonpositive_workers(self, tmp_path):
        spool = SpoolDirectory.create(tmp_path / "s", format="binary")
        with pytest.raises(DiscoveryError):
            ProcessPoolValidationEngine(spool, workers=0)

    def test_duplicate_candidates_handled_like_sequential(self, tmp_path):
        """Duplicates must be deduped before sharding, not split across shards."""
        from repro.core.brute_force import BruteForceValidator

        spool = SpoolDirectory.create(tmp_path / "s", format="binary")
        refs = {}
        for name, count in (("a", 3), ("b", 9), ("c", 5), ("d", 7)):
            refs[name] = AttributeRef("t", name)
            spool.add_values(refs[name], [f"{name}{i}" for i in range(count)])
        spool.save_index()
        candidates = [
            _cand("a", "b"), _cand("c", "d"), _cand("a", "b"),  # duplicate
            _cand("c", "b"), _cand("c", "d"),                    # duplicate
        ]
        sequential = BruteForceValidator(spool).validate(candidates)
        parallel = ProcessPoolValidationEngine(spool, workers=2).validate(
            candidates
        )
        assert parallel.decisions == sequential.decisions
        assert parallel.stats.candidates_total == sequential.stats.candidates_total
        assert parallel.stats.items_read == sequential.stats.items_read

"""Adaptive engine selection: cost model, routing, reaping, calibration.

The contract under test (ISSUE 6 / ROADMAP open item 3): the router must
*price* the pool tax before paying it — small workloads route sequential,
large parallel-friendly ones route pooled, one-giant-component merge
graphs get a histogram-balanced byte-range split — and whichever engine
wins, the answers stay byte-identical to the sequential run of the chosen
strategy.  Forced decisions are produced by planting extreme calibration
constants, never by timing, so the suite is deterministic on any box.
"""

from __future__ import annotations

import json

import pytest

from repro.core.brute_force import BruteForceValidator
from repro.core.candidates import Candidate
from repro.core.merge_single_pass import MergeSinglePassValidator
from repro.core.runner import DiscoveryConfig, DiscoverySession, discover_inds
from repro.db.schema import AttributeRef
from repro.errors import DiscoveryError
from repro.parallel.planner import (
    CalibrationProfile,
    ShardPlanner,
    calibration_path,
    choose_engine,
    load_calibration,
    partition_bounds,
)
from repro.parallel.pool import WorkerPool
from repro.storage.sorted_sets import SpoolDirectory


from seeded_dbs import spool_with as _spool_with


def _cand(dep: str, ref: str) -> Candidate:
    return Candidate(AttributeRef("t", dep), AttributeRef("t", ref))


#: Free pool: parallelism costs nothing, so any split with > 1 lane wins.
FREE_POOL = CalibrationProfile(
    pool_startup_seconds=0.0, task_overhead_seconds=0.0, source="calibrated"
)
#: Prohibitive pool: overheads dwarf any compute, so sequential always wins.
TAXED_POOL = CalibrationProfile(
    pool_startup_seconds=1e6, task_overhead_seconds=1e6, source="calibrated"
)


class TestChooseEngine:
    def test_small_workload_routes_sequential_past_the_pool_tax(
        self, tmp_path
    ):
        # The documented bug: tiny requests were 4x slower pooled.  With
        # default (conservative) constants the model must keep them
        # sequential even when workers are on offer.
        spool = _spool_with(tmp_path, {"a": 20, "b": 30, "c": 10})
        decision = choose_engine(
            spool,
            [_cand("a", "b"), _cand("c", "b")],
            ("brute-force",),
            workers=4,
            cpu_count=8,
        )
        assert decision.engine == "sequential-brute-force"
        assert decision.workers == 1
        assert (
            decision.predicted_seconds["sequential-brute-force"]
            < decision.predicted_seconds["pooled-brute-force"]
        )

    def test_free_pool_routes_big_workload_pooled(self, tmp_path):
        spool = _spool_with(tmp_path, {f"c{i}": 500 for i in range(6)})
        candidates = [
            _cand(f"c{i}", f"c{j}") for i in range(6) for j in range(6) if i != j
        ]
        decision = choose_engine(
            spool,
            candidates,
            ("brute-force",),
            workers=4,
            calibration=FREE_POOL,
            cpu_count=8,
        )
        assert decision.engine == "pooled-brute-force"
        assert decision.workers == 4

    def test_single_cpu_box_never_routes_pooled(self, tmp_path):
        # Even a free pool buys nothing without a second lane to run on:
        # lanes = min(workers, cpus, tasks) = 1, so pooled compute equals
        # sequential compute and the sequential tie-break wins.
        spool = _spool_with(tmp_path, {f"c{i}": 500 for i in range(6)})
        candidates = [
            _cand(f"c{i}", f"c{j}") for i in range(6) for j in range(6) if i != j
        ]
        decision = choose_engine(
            spool,
            candidates,
            ("brute-force",),
            workers=4,
            calibration=FREE_POOL,
            cpu_count=1,
        )
        assert decision.engine == "sequential-brute-force"

    def test_taxed_pool_routes_sequential_at_any_size(self, tmp_path):
        spool = _spool_with(tmp_path, {f"c{i}": 5000 for i in range(4)})
        candidates = [
            _cand(f"c{i}", f"c{j}") for i in range(4) for j in range(4) if i != j
        ]
        decision = choose_engine(
            spool,
            candidates,
            ("brute-force", "merge-single-pass"),
            workers=4,
            calibration=TAXED_POOL,
            cpu_count=8,
        )
        assert decision.engine in ("sequential-brute-force", "sequential-merge")

    def test_warm_pool_drops_the_startup_term(self, tmp_path):
        spool = _spool_with(tmp_path, {f"c{i}": 500 for i in range(6)})
        candidates = [
            _cand(f"c{i}", f"c{j}") for i in range(6) for j in range(6) if i != j
        ]
        kwargs = dict(
            strategies=("brute-force",),
            workers=4,
            calibration=CalibrationProfile(
                pool_startup_seconds=0.5,
                task_overhead_seconds=0.0,
                source="calibrated",
            ),
            cpu_count=8,
        )
        cold = choose_engine(spool, candidates, **kwargs)
        warm = choose_engine(spool, candidates, warm_pool=True, **kwargs)
        assert (
            warm.predicted_seconds["pooled-brute-force"]
            < cold.predicted_seconds["pooled-brute-force"]
        )
        assert warm.engine == "pooled-brute-force"

    def test_one_giant_component_offers_range_split_not_pooled_merge(
        self, tmp_path
    ):
        # A star graph is one connected component: the component planner
        # cannot split it, so pooled-merge is off the table and the
        # histogram range split is the only parallel merge engine priced.
        # Distinct attribute-name lead bytes give the histogram real cuts.
        spool = _spool_with(tmp_path, {name: 400 for name in "aemsz"})
        candidates = [_cand(name, "a") for name in "emsz"]
        decision = choose_engine(
            spool,
            candidates,
            ("merge-single-pass",),
            workers=4,
            calibration=FREE_POOL,
            cpu_count=8,
        )
        assert "pooled-merge" not in decision.predicted_seconds
        assert "range-split-merge" in decision.predicted_seconds
        assert decision.engine == "range-split-merge"
        assert decision.range_split > 1

    def test_range_split_pays_the_overread_penalty(self, tmp_path):
        # Same workload, component split available: at equal lane counts
        # the range split must price strictly above pooled-merge (the
        # boundary re-reads are not free), so it is never preferred when
        # components already parallelise the graph.
        spool = _spool_with(tmp_path, {f"c{i}": 400 for i in range(8)})
        candidates = [_cand(f"c{i}", f"c{i + 1}") for i in range(0, 8, 2)]
        decision = choose_engine(
            spool,
            candidates,
            ("merge-single-pass",),
            workers=4,
            calibration=FREE_POOL,
            range_split=4,
            cpu_count=8,
        )
        assert (
            decision.predicted_seconds["pooled-merge"]
            < decision.predicted_seconds["range-split-merge"]
        )
        assert decision.engine == "pooled-merge"

    def test_tie_breaks_toward_sequential(self, tmp_path):
        # Zero-cost calibration makes every engine predict 0.0 — the
        # deterministic tie-break must pick the engine with no processes.
        spool = _spool_with(tmp_path, {"a": 50, "b": 50, "c": 50})
        zero = CalibrationProfile(
            seq_item_seconds=0.0,
            merge_item_seconds=0.0,
            pool_startup_seconds=0.0,
            task_overhead_seconds=0.0,
            source="calibrated",
        )
        decision = choose_engine(
            spool,
            [_cand("a", "b"), _cand("b", "c")],
            ("brute-force", "merge-single-pass"),
            workers=4,
            calibration=zero,
            cpu_count=8,
        )
        assert decision.engine == "sequential-brute-force"

    def test_invalid_inputs_rejected(self, tmp_path):
        spool = _spool_with(tmp_path, {"a": 5, "b": 5})
        with pytest.raises(DiscoveryError):
            choose_engine(spool, [_cand("a", "b")], ("brute-force",), workers=0)
        with pytest.raises(DiscoveryError):
            choose_engine(spool, [_cand("a", "b")], (), workers=2)


class TestRangeBounds:
    def test_bounds_tile_the_byte_space_without_gaps(self, tmp_path):
        spool = _spool_with(tmp_path, {"a": 300, "b": 200})
        bounds = ShardPlanner(spool).range_bounds(
            [_cand("a", "b")], splits=4
        )
        assert bounds[0][0] == 0
        for (_, hi), (lo, _) in zip(bounds, bounds[1:]):
            assert hi == lo, "ranges must abut — a gap drops values"
        assert all(lo < hi for lo, hi in bounds)

    def test_skewed_histogram_yields_fewer_but_nonempty_ranges(self, tmp_path):
        # Every value shares the lead byte "z": a 4-way cut by count can
        # place at most one boundary, so collapsed duplicates must be
        # dropped rather than emitted as empty ranges.
        spool = SpoolDirectory.create(tmp_path / "spool", format="binary")
        spool.add_values(
            AttributeRef("t", "a"), [f"z{i:05d}" for i in range(100)]
        )
        spool.add_values(
            AttributeRef("t", "b"), [f"z{i:05d}" for i in range(0, 200, 2)]
        )
        spool.save_index()
        bounds = ShardPlanner(spool).range_bounds([_cand("a", "b")], splits=4)
        assert all(lo < hi for lo, hi in bounds)
        assert len(bounds) <= 4
        covered = any(lo <= ord("z") < hi for lo, hi in bounds)
        assert covered, "the populated lead byte must fall inside a range"

    def test_balanced_histogram_splits_near_evenly(self, tmp_path):
        # Four attributes with distinct lead bytes and equal counts: the
        # histogram cut should isolate them rather than blindly slicing
        # 0..256 into four spans that lump all data into one.
        spool = SpoolDirectory.create(tmp_path / "spool", format="binary")
        for name in ("a", "m", "s", "z"):
            spool.add_values(
                AttributeRef("t", name),
                [f"{name}{i:05d}" for i in range(100)],
            )
        spool.save_index()
        planner = ShardPlanner(spool)
        candidates = [_cand("a", "m"), _cand("s", "z")]
        hist = planner.first_byte_histogram(candidates)
        assert sum(hist) == 400
        bounds = planner.range_bounds(candidates, splits=4)
        weights = [sum(hist[lo:hi]) for lo, hi in bounds]
        assert len(bounds) == 4
        assert max(weights) == 100, f"cut must isolate the four bytes: {weights}"

    def test_empty_candidates_fall_back_to_blind_cut(self, tmp_path):
        spool = _spool_with(tmp_path, {"a": 10})
        assert ShardPlanner(spool).range_bounds([], splits=4) == (
            partition_bounds(4)
        )

    def test_bad_split_count_rejected(self, tmp_path):
        spool = _spool_with(tmp_path, {"a": 10, "b": 10})
        with pytest.raises(DiscoveryError):
            ShardPlanner(spool).range_bounds([_cand("a", "b")], splits=0)


class TestCalibrationPersistence:
    def test_save_load_round_trip(self, tmp_path):
        profile = CalibrationProfile(
            seq_item_seconds=1e-7,
            merge_item_seconds=2e-7,
            pool_startup_seconds=0.01,
            task_overhead_seconds=0.001,
            source="calibrated",
        )
        profile.save(calibration_path(tmp_path))
        assert load_calibration(tmp_path) == profile

    def test_missing_file_falls_back_to_defaults(self, tmp_path):
        profile = load_calibration(tmp_path / "nowhere")
        assert profile == CalibrationProfile()
        assert profile.source == "default"

    def test_corrupt_file_falls_back_to_defaults(self, tmp_path):
        calibration_path(tmp_path).write_text("{not json", "utf-8")
        assert load_calibration(tmp_path) == CalibrationProfile()
        (tmp_path / "calibration.json").write_text('["a list"]', "utf-8")
        assert load_calibration(tmp_path) == CalibrationProfile()

    def test_partial_file_keeps_defaults_for_missing_keys(self, tmp_path):
        calibration_path(tmp_path).write_text(
            json.dumps({"seq_item_seconds": 5e-8}), "utf-8"
        )
        profile = load_calibration(tmp_path)
        assert profile.seq_item_seconds == 5e-8
        assert (
            profile.pool_startup_seconds
            == CalibrationProfile().pool_startup_seconds
        )
        assert profile.source == "calibrated"


class TestIdleReaping:
    def test_reap_idle_drains_workers_and_next_job_respawns(self, tmp_path):
        spool = _spool_with(tmp_path, {"a": 5, "b": 9, "c": 3})
        candidates = [_cand("a", "b"), _cand("c", "b"), _cand("c", "a")]
        sequential = BruteForceValidator(spool).validate(candidates)
        from repro.parallel.engine import ProcessPoolValidationEngine

        with WorkerPool(2) as pool:
            engine = ProcessPoolValidationEngine(spool, workers=2, pool=pool)
            first = engine.validate(candidates)
            assert pool.alive_workers == 2
            assert pool.reap_idle(0.0) == 2
            assert pool.alive_workers == 0
            assert pool.started  # reaped, not shut down
            assert pool.stats.workers_reaped == 2
            # The next job must transparently respawn a full fleet and
            # still produce sequential-identical answers.
            second = engine.validate(candidates)
            assert pool.alive_workers == 2
            assert first.decisions == sequential.decisions
            assert second.decisions == sequential.decisions
            assert second.stats.items_read == sequential.stats.items_read
            assert pool.stats.workers_spawned == 4  # 2 original + 2 respawned
            assert pool.stats.workers_replaced == 0  # reaping is not death

    def test_reap_idle_respects_the_idle_threshold(self, tmp_path):
        spool = _spool_with(tmp_path, {"a": 5, "b": 9, "c": 3})
        from repro.parallel.engine import ProcessPoolValidationEngine

        with WorkerPool(2) as pool:
            ProcessPoolValidationEngine(
                spool, workers=2, pool=pool
            ).validate([_cand("a", "b"), _cand("c", "b"), _cand("c", "a")])
            assert pool.alive_workers == 2
            # The job just finished: a one-hour threshold must not fire.
            assert pool.reap_idle(3600.0) == 0
            assert pool.alive_workers == 2

    def test_reap_on_unstarted_pool_is_noop(self):
        pool = WorkerPool(2)
        try:
            assert pool.reap_idle(0.0) == 0
            assert not pool.started
        finally:
            pool.shutdown()

    def test_session_reaps_after_sequential_routed_runs(self, fk_db):
        # An adaptive session whose requests all route sequential must not
        # pin a warm fleet.  With default calibration this tiny database
        # always routes sequential, so the pool never even starts; an
        # explicitly parallel run then warms it, and the next discover's
        # reap hook (threshold 0) drains it again.
        config = DiscoveryConfig(strategy="adaptive", validation_workers=2)
        with DiscoverySession(config, idle_reap_seconds=0.0) as session:
            result = session.discover(fk_db)
            assert result.engine_choice["engine"].startswith("sequential")
            pool = session._pool
            assert pool is None or pool.alive_workers == 0
            pinned = DiscoveryConfig(strategy="brute-force", validation_workers=2)
            session.discover(fk_db, pinned)
            assert session._pool is not None
            # The reap hook ran right after the pooled discover with a
            # zero threshold, so the fleet is already drained.
            assert session._pool.alive_workers == 0
            assert session._pool.stats.workers_reaped == 2

    def test_session_rejects_negative_idle_reap(self):
        with pytest.raises(DiscoveryError):
            DiscoverySession(DiscoveryConfig(), idle_reap_seconds=-1.0)


class TestAdaptiveRouting:
    def _force_calibration(self, cache_dir, profile: CalibrationProfile):
        profile.save(calibration_path(cache_dir))

    def test_adaptive_default_is_sequential_on_tiny_input(self, fk_db):
        result = discover_inds(
            fk_db,
            DiscoveryConfig(strategy="adaptive", validation_workers=4),
        )
        choice = result.engine_choice
        assert choice is not None
        assert choice["engine"].startswith("sequential")
        assert choice["calibration"] == "default"
        assert choice["engine"] in choice["predicted_seconds"]
        assert choice["actual_seconds"] >= 0
        # Routing cost is accounted separately: it must not be folded into
        # validate_seconds (the bench compares engines on validation alone).
        assert choice["routing_seconds"] >= 0
        assert result.to_dict()["engine_choice"] == choice

    def test_fixed_strategy_reports_null_engine_choice(self, fk_db):
        """Non-adaptive runs emit the null choice, not a missing key.

        ``routing_seconds`` is always present (0.0 when no routing ran) so
        downstream consumers never need ``.get`` guards; ``engine`` stays
        ``None`` so "was this run routed?" remains one comparison.
        """
        result = discover_inds(fk_db, DiscoveryConfig(strategy="brute-force"))
        assert result.engine_choice == {
            "strategy": None,
            "engine": None,
            "routing_seconds": 0.0,
        }
        assert result.to_dict()["engine_choice"] == result.engine_choice

    def test_forced_pooled_routing_agrees_with_sequential(
        self, fk_db, tmp_path, monkeypatch
    ):
        # The router reads os.cpu_count(): on a 1-core CI box pooled
        # compute can never beat sequential (lanes == 1), so pretend the
        # box is wide to exercise the pooled path deterministically.
        monkeypatch.setattr("repro.parallel.planner.os.cpu_count", lambda: 8)
        self._force_calibration(tmp_path, FREE_POOL)
        pooled = discover_inds(
            fk_db,
            DiscoveryConfig(
                strategy="brute-force",
                adaptive=True,
                validation_workers=2,
                cache_dir=str(tmp_path),
            ),
        )
        assert pooled.engine_choice["engine"] == "pooled-brute-force"
        assert pooled.engine_choice["calibration"] == "calibrated"
        sequential = discover_inds(
            fk_db, DiscoveryConfig(strategy="brute-force")
        )
        assert {str(i) for i in pooled.satisfied} == {
            str(i) for i in sequential.satisfied
        }
        assert (
            pooled.validator_stats.items_read
            == sequential.validator_stats.items_read
        )

    def test_pinned_merge_routes_only_merge_engines(
        self, fk_db, tmp_path, monkeypatch
    ):
        monkeypatch.setattr("repro.parallel.planner.os.cpu_count", lambda: 8)
        self._force_calibration(tmp_path, FREE_POOL)
        result = discover_inds(
            fk_db,
            DiscoveryConfig(
                strategy="merge-single-pass",
                adaptive=True,
                validation_workers=2,
                cache_dir=str(tmp_path),
            ),
        )
        choice = result.engine_choice
        assert choice["strategy"] == "merge-single-pass"
        assert all(
            "brute-force" not in name for name in choice["predicted_seconds"]
        )

    def test_forced_range_split_merge_agrees_on_decisions(self, tmp_path):
        # One giant component + free pool + prohibitive brute-force makes
        # range-split-merge the only rational engine; its decisions and
        # satisfied set must match the sequential merge exactly (its
        # items_read may legitimately exceed it at the cut boundaries).
        spool = _spool_with(tmp_path, {name: 60 for name in "aemsz"})
        candidates = [_cand(name, "a") for name in "emsz"]
        decision = choose_engine(
            spool,
            candidates,
            ("merge-single-pass",),
            workers=2,
            calibration=FREE_POOL,
            cpu_count=8,
        )
        assert decision.engine == "range-split-merge"
        from repro.parallel.merge import PartitionedMergeValidator

        split = PartitionedMergeValidator(
            spool, workers=2, range_split=decision.range_split
        ).validate(candidates)
        sequential = MergeSinglePassValidator(spool).validate(candidates)
        assert split.decisions == sequential.decisions
        assert split.stats.items_read >= sequential.stats.items_read

    def test_adaptive_strategy_result_keeps_requested_name(self, fk_db):
        result = discover_inds(fk_db, DiscoveryConfig(strategy="adaptive"))
        assert result.strategy == "adaptive"
        assert result.engine_choice["strategy"] in (
            "brute-force",
            "merge-single-pass",
        )


class TestExportSkippedAccounting:
    def test_cache_hit_records_skipped_parallel_export(self, fk_db, tmp_path):
        config = DiscoveryConfig(
            strategy="brute-force",
            validation_workers=2,
            parallel_export=True,
            reuse_spool=True,
            cache_dir=str(tmp_path / "cache"),
        )
        first = discover_inds(fk_db, config)
        assert not first.spool_cache_hit
        assert not first.export_skipped
        assert first.to_dict()["export_skipped"] is False
        second = discover_inds(fk_db, config)
        assert second.spool_cache_hit
        assert second.export_skipped, (
            "a cache hit silently dropping parallel_export must say so"
        )
        assert second.to_dict()["export_skipped"] is True

    def test_plain_cache_hit_is_not_a_skipped_export(self, fk_db, tmp_path):
        # Without parallel_export there is nothing to skip: the flag must
        # stay False on hits, or every cached run would read as a warning.
        config = DiscoveryConfig(
            strategy="brute-force",
            reuse_spool=True,
            cache_dir=str(tmp_path / "cache"),
        )
        discover_inds(fk_db, config)
        second = discover_inds(fk_db, config)
        assert second.spool_cache_hit
        assert not second.export_skipped

"""The two pipeline task kinds: spool export and the sampling pretest.

Exactness of the pooled *pipeline* is pinned end to end in
``tests/test_validator_agreement.py::TestEndToEndPipelineAgreement``; this
file covers what only the kinds themselves can get wrong: fault tolerance
(a worker dying mid ``spool-export`` / mid ``sample-pretest`` must requeue
and converge, never corrupt a file or a verdict), cache hygiene (a crashed
pooled export must leave no visible cache entry, only an orphan the
operator tooling can see and reclaim), isolation (a crash storm in one job
must not disturb a concurrent job on the same fleet — the serve shape),
and the stats round trip (``tasks_by_kind`` spanning all phases through
``DiscoveryResult.to_dict()``).
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.core.brute_force import BruteForceValidator
from repro.core.candidates import Candidate, PretestConfig
from repro.core.pruning import SamplingPretest
from repro.core.runner import DiscoveryConfig, discover_inds
from repro.db import Column, Database, DataType, TableSchema
from repro.db.stats import collect_column_stats
from repro.errors import DiscoveryError
from repro.parallel.engine import ProcessPoolValidationEngine
from repro.parallel.export import pooled_export
from repro.parallel.planner import ShardPlanner
from repro.parallel.pool import WorkerPool, run_specs
from repro.parallel.tasks import KIND_SAMPLE_PRETEST, TaskSpec
from repro.db.schema import AttributeRef
from repro.storage.exporter import export_database
from repro.storage.spool_cache import SpoolCache, catalog_fingerprint


from seeded_dbs import build_db


def _candidates(db: Database) -> list[Candidate]:
    from repro.core.candidates import (
        apply_pretests,
        generate_unique_ref_candidates,
    )

    stats = collect_column_stats(db)
    raw = generate_unique_ref_candidates(stats)
    candidates, _ = apply_pretests(
        raw, stats, PretestConfig(cardinality=True, max_value=False)
    )
    return candidates


def _index_doc(root) -> dict:
    with open(f"{root}/index.json", encoding="utf-8") as fh:
        return json.load(fh)


class TestExportFaults:
    def test_worker_death_mid_export_requeues_and_converges(
        self, tmp_path, monkeypatch
    ):
        """A worker killed mid spool-export must not lose or corrupt files.

        The fault hook kills exactly one worker the first time it picks up
        a task whose export units mention the marked attribute; the pool
        must requeue the task, replace the worker, and the assembled spool
        — index document, per-file bytes, export statistics — must be
        identical to the sequential exporter's.
        """
        db = build_db()
        sequential, seq_stats = export_database(
            db, str(tmp_path / "seq"), spool_format="binary", block_size=4
        )
        monkeypatch.setenv("REPRO_POOL_FAULT_ATTR", "t0.c0")
        monkeypatch.setenv("REPRO_POOL_FAULT_ONCE_DIR", str(tmp_path))
        with WorkerPool(2) as pool:
            spool, stats, pool_stats, task_spans = pooled_export(
                db,
                str(tmp_path / "pooled"),
                workers=2,
                pool=pool,
                spool_format="binary",
                block_size=4,
            )
            assert pool.stats.tasks_requeued >= 1
            assert pool.stats.workers_replaced >= 1
        # Exactly one span per task survives the requeue (done-dedup), and
        # the requeued task's span records its retry count.
        assert len(task_spans) == pool_stats["tasks_dispatched"]
        assert max(s["attrs"]["requeues"] for s in task_spans) >= 1
        assert (tmp_path / "pool-fault-fired").exists()
        assert stats == seq_stats
        assert pool_stats["tasks_by_kind"].keys() == {"spool-export"}
        seq_doc, pooled_doc = _index_doc(sequential.root), _index_doc(spool.root)
        assert pooled_doc == seq_doc
        for entry in pooled_doc["attributes"]:
            seq_bytes = (sequential.root / entry["file"]).read_bytes()
            assert (spool.root / entry["file"]).read_bytes() == seq_bytes
        # No temporary leftovers from the killed writer survive assembly.
        assert not list(spool.root.glob("*.tmp-*"))

    def test_failed_export_exposes_no_cache_entry_only_an_orphan(
        self, tmp_path, monkeypatch
    ):
        """A crash-looping export fails loudly and never publishes.

        Every worker that picks up the marked task dies (no once-marker),
        so the job fails at the requeue cap.  The cache must contain no
        entry — lookups miss, nothing carries a ``catalog_hash`` — and the
        abandoned staging directory must be visible as an orphan and
        reclaimable with ``evict_orphans``.
        """
        db = build_db()
        cache_dir = tmp_path / "cache"
        config = DiscoveryConfig(
            strategy="brute-force",
            validation_workers=2,
            parallel_export=True,
            reuse_spool=True,
            cache_dir=str(cache_dir),
            pretests=PretestConfig(cardinality=True, max_value=False),
        )
        monkeypatch.setenv("REPRO_POOL_FAULT_ATTR", "t0.c0")
        with pytest.raises(DiscoveryError, match="killed its worker"):
            discover_inds(db, config)
        cache = SpoolCache(cache_dir)
        assert cache.list_entries() == []
        fingerprint = catalog_fingerprint(db.name, collect_column_stats(db))
        assert cache.lookup(fingerprint) is None
        orphans = cache.list_orphans()
        assert len(orphans) == 1
        assert orphans[0].kind == "staging"
        # The staging index exists (workers opened it) but is unstamped:
        # completeness is exactly the presence of catalog_hash after publish.
        staged = _index_doc(orphans[0].path)
        assert "catalog_hash" not in staged
        assert cache.evict_orphans() == orphans
        assert cache.list_orphans() == []
        # The recovered operator path: the same config succeeds and caches
        # once the fault is gone.
        monkeypatch.delenv("REPRO_POOL_FAULT_ATTR")
        result = discover_inds(db, config)
        assert not result.spool_cache_hit
        assert len(cache.list_entries()) == 1

    def test_concurrent_job_unaffected_by_export_crash(
        self, tmp_path, monkeypatch
    ):
        """A crash mid-export must not disturb a concurrent job on the fleet.

        The serve shape: two requests multiplex one pool.  Thread A runs a
        pooled export whose task kills a worker once; thread B
        concurrently validates candidates on an already exported spool.
        B's decisions and counters must equal the sequential validator's
        exactly, crash or no crash.
        """
        db = build_db()
        candidates = _candidates(db)
        assert candidates
        spool, _ = export_database(
            db, str(tmp_path / "spool"), spool_format="binary", block_size=4
        )
        sequential = BruteForceValidator(spool).validate(candidates)
        monkeypatch.setenv("REPRO_POOL_FAULT_ATTR", "t0.c0")
        monkeypatch.setenv("REPRO_POOL_FAULT_ONCE_DIR", str(tmp_path))
        results: dict[str, object] = {}
        errors: list[Exception] = []
        with WorkerPool(2) as pool:
            def run_export() -> None:
                try:
                    results["export"] = pooled_export(
                        db,
                        str(tmp_path / "pooled"),
                        workers=2,
                        pool=pool,
                        spool_format="binary",
                        block_size=4,
                    )
                except Exception as exc:  # surfaced below
                    errors.append(exc)

            def run_validate() -> None:
                try:
                    engine = ProcessPoolValidationEngine(
                        spool, workers=2, pool=pool
                    )
                    results["validate"] = engine.validate(candidates)
                except Exception as exc:
                    errors.append(exc)

            threads = [
                threading.Thread(target=run_export),
                threading.Thread(target=run_validate),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors
            assert pool.stats.workers_replaced >= 1
        got = results["validate"]
        assert got.decisions == sequential.decisions
        assert got.stats.items_read == sequential.stats.items_read
        assert got.stats.comparisons == sequential.stats.comparisons
        _, export_stats, _, _ = results["export"]
        assert export_stats.values_written > 0


class TestPretestFaults:
    def test_worker_death_mid_pretest_requeues_and_converges(
        self, tmp_path, monkeypatch
    ):
        """A worker killed mid sample-pretest must not change the pruning."""
        db = build_db()
        candidates = _candidates(db)
        assert candidates
        spool, _ = export_database(
            db, str(tmp_path / "spool"), spool_format="binary", block_size=4
        )
        sampler = SamplingPretest(spool, sample_size=2, seed=7)
        expected = {c: sampler.pretest(c) for c in candidates}
        assert not all(expected.values()), "fixture must refute something"
        monkeypatch.setenv("REPRO_POOL_FAULT_ATTR", "t0.c0")
        monkeypatch.setenv("REPRO_POOL_FAULT_ONCE_DIR", str(tmp_path))
        chunks = ShardPlanner(spool).plan_pretest_chunks(candidates, workers=2)
        specs = [
            TaskSpec(
                kind=KIND_SAMPLE_PRETEST,
                candidates=chunk.candidates,
                payload=(2, 7),
            )
            for chunk in chunks
        ]
        with WorkerPool(2) as pool:
            job, _ = run_specs(pool, 2, str(spool.root), specs)
            assert pool.stats.tasks_requeued >= 1
            assert pool.stats.workers_replaced >= 1
        decided: dict[Candidate, bool] = {}
        for outcome in job.outcomes:
            decided.update(outcome.decisions)
        assert {str(c): v for c, v in decided.items()} == {
            str(c): v for c, v in expected.items()
        }
        assert job.stats.tasks_by_kind.keys() == {"sample-pretest"}


class TestPretestPlanning:
    def test_chunks_cover_exactly_once_and_group_by_dependent(self, tmp_path):
        db = build_db()
        candidates = _candidates(db)
        spool, _ = export_database(db, str(tmp_path / "spool"))
        chunks = ShardPlanner(spool).plan_pretest_chunks(candidates, workers=2)
        seen = [c for chunk in chunks for c in chunk.candidates]
        assert sorted(map(str, seen)) == sorted(map(str, candidates))
        assert len(seen) == len(candidates)
        # Each dependent attribute's candidates share one chunk, so the
        # chunk's sampler draws that reservoir exactly once.
        home: dict[AttributeRef, int] = {}
        for chunk in chunks:
            for candidate in chunk.candidates:
                home.setdefault(candidate.dependent, chunk.index)
                assert home[candidate.dependent] == chunk.index
        # Deterministic plan, original order within a chunk.
        assert chunks == ShardPlanner(spool).plan_pretest_chunks(
            candidates, workers=2
        )
        positions = {str(c): i for i, c in enumerate(candidates)}
        for chunk in chunks:
            order = [positions[str(c)] for c in chunk.candidates]
            assert order == sorted(order)


class TestStatsRoundTrip:
    def test_tasks_by_kind_spans_phases_and_survives_to_dict(self):
        """Pipeline pool counters round-trip through the JSON summary."""
        db = build_db()
        sequential = discover_inds(
            db,
            DiscoveryConfig(
                strategy="brute-force",
                sampling_size=2,
                pretests=PretestConfig(cardinality=True, max_value=False),
            ),
        )
        pooled = discover_inds(
            db,
            DiscoveryConfig(
                strategy="brute-force",
                sampling_size=2,
                validation_workers=2,
                parallel_export=True,
                parallel_pretest=True,
                pretests=PretestConfig(cardinality=True, max_value=False),
            ),
        )
        kinds = pooled.pool_stats["tasks_by_kind"]
        assert {"spool-export", "sample-pretest", "brute-force"} <= set(kinds)
        assert all(count > 0 for count in kinds.values())
        # The dict survives to_dict() and a JSON round trip unchanged.
        document = json.loads(json.dumps(pooled.to_dict()))
        assert document["pool"]["tasks_by_kind"] == kinds
        assert (
            document["pool"]["tasks_completed"]
            == pooled.pool_stats["tasks_completed"]
            == sum(kinds.values())
        )
        # Per-phase sums match the sequential pipeline exactly: export
        # counters for the export phase, items_read for validation (the
        # pretest deliberately reads outside the validator accounting in
        # both pipelines).
        assert pooled.export_values_scanned == sequential.export_values_scanned
        assert pooled.export_values_written == sequential.export_values_written
        assert pooled.sampling_refuted == sequential.sampling_refuted
        assert (
            pooled.validator_stats.items_read
            == sequential.validator_stats.items_read
        )
        assert sequential.pool_stats is None
        assert json.loads(json.dumps(sequential.to_dict()))["pool"] is None


class TestPooledExportAgreement:
    """`pooled_export` is a drop-in for `export_database`, byte for byte."""

    @pytest.mark.parametrize("spool_format", ("text", "binary"))
    def test_matches_sequential_export_on_both_formats(
        self, spool_format, tmp_path
    ):
        db = build_db(seed=3)
        sequential, seq_stats = export_database(
            db, str(tmp_path / "seq"), spool_format=spool_format, block_size=3
        )
        # pool=None: the ephemeral right-sized fleet, like the engines.
        pooled, stats, pool_stats, _ = pooled_export(
            db,
            str(tmp_path / "pooled"),
            workers=3,
            spool_format=spool_format,
            block_size=3,
        )
        assert stats == seq_stats
        assert pool_stats["tasks_completed"] == pool_stats["tasks_dispatched"]
        assert _index_doc(pooled.root) == _index_doc(sequential.root)
        for ref in sequential.attributes():
            assert pooled.get(ref).values() == sequential.get(ref).values()

    def test_empty_attributes_are_dropped_like_the_sequential_export(
        self, tmp_path
    ):
        db = build_db()
        empty = db.create_table(
            TableSchema("empty_t", [Column("only_nulls", DataType.VARCHAR)])
        )
        empty.insert({"only_nulls": None})
        attrs = db.attributes()
        assert any(ref.table == "empty_t" for ref in attrs)
        sequential, seq_stats = export_database(
            db, str(tmp_path / "seq"), attributes=attrs
        )
        pooled, stats, _, _ = pooled_export(
            db, str(tmp_path / "pooled"), workers=2, attributes=attrs
        )
        assert stats.skipped_empty == seq_stats.skipped_empty == 1
        assert stats == seq_stats
        assert _index_doc(pooled.root) == _index_doc(sequential.root)
        # The empty attribute's file is gone, not just unindexed.
        assert not list(pooled.root.glob("empty_t__*"))

    def test_nothing_to_export_returns_no_pool_stats(self, tmp_path):
        db = Database("bare")
        pooled, stats, pool_stats, task_spans = pooled_export(
            db, str(tmp_path / "pooled"), workers=2
        )
        assert len(pooled) == 0
        assert stats.values_scanned == 0
        assert pool_stats is None
        assert task_spans == []

"""Shard planning: coverage, balance, determinism."""

from __future__ import annotations

import pytest

from repro.core.candidates import Candidate
from repro.db.schema import AttributeRef
from repro.errors import DiscoveryError
from repro.parallel.planner import ShardPlanner, pack_cost_groups
from repro.storage.sorted_sets import SpoolDirectory


def _spool_with(tmp_path, sizes: dict[str, int]) -> SpoolDirectory:
    spool = SpoolDirectory.create(tmp_path / "spool", format="binary")
    for name, count in sizes.items():
        ref = AttributeRef("t", name)
        spool.add_values(ref, [f"{name}-{i:06d}" for i in range(count)])
    spool.save_index()
    return spool


def _cand(dep: str, ref: str) -> Candidate:
    return Candidate(AttributeRef("t", dep), AttributeRef("t", ref))


class TestShardPlanner:
    def test_every_candidate_lands_in_exactly_one_shard(self, tmp_path):
        spool = _spool_with(tmp_path, {f"c{i}": 10 + i for i in range(6)})
        candidates = [
            _cand(f"c{i}", f"c{j}") for i in range(6) for j in range(6) if i != j
        ]
        shards = ShardPlanner(spool).plan(candidates, 4)
        assert len(shards) == 4
        seen = [c for shard in shards for c in shard.candidates]
        assert sorted(map(str, seen)) == sorted(map(str, candidates))
        assert len(seen) == len(candidates)

    def test_balances_by_spool_size_not_candidate_count(self, tmp_path):
        # One giant attribute and many tiny ones: counting candidates would
        # put the giant's candidates together; costing by size spreads them.
        sizes = {"big": 10_000} | {f"tiny{i}": 2 for i in range(8)}
        spool = _spool_with(tmp_path, sizes)
        candidates = [_cand(f"tiny{i}", "big") for i in range(8)]
        candidates += [_cand(f"tiny{i}", f"tiny{(i + 1) % 8}") for i in range(8)]
        shards = ShardPlanner(spool).plan(candidates, 4)
        loads = [s.estimated_cost for s in shards]
        # Each of the 4 shards must carry 2 of the 8 big-referencing
        # candidates — any other split is at least ~10000 cost out of balance.
        assert max(loads) < 2 * min(loads)
        for shard in shards:
            big_refs = sum(
                1 for c in shard.candidates if c.referenced.column == "big"
            )
            assert big_refs == 2

    def test_deterministic_and_order_preserving_within_shard(self, tmp_path):
        spool = _spool_with(tmp_path, {f"c{i}": 5 * (i + 1) for i in range(5)})
        candidates = [
            _cand(f"c{i}", f"c{j}") for i in range(5) for j in range(5) if i != j
        ]
        planner = ShardPlanner(spool)
        first = planner.plan(candidates, 3)
        second = planner.plan(candidates, 3)
        assert first == second
        order = {str(c): i for i, c in enumerate(candidates)}
        for shard in first:
            positions = [order[str(c)] for c in shard.candidates]
            assert positions == sorted(positions)

    def test_single_shard_plan_replays_sequential_order(self, tmp_path):
        spool = _spool_with(tmp_path, {"a": 3, "b": 9, "c": 1})
        candidates = [_cand("a", "b"), _cand("c", "b"), _cand("c", "a")]
        (shard,) = ShardPlanner(spool).plan(candidates, 1)
        assert list(shard.candidates) == candidates

    def test_more_shards_than_candidates_drops_empties(self, tmp_path):
        spool = _spool_with(tmp_path, {"a": 3, "b": 9})
        shards = ShardPlanner(spool).plan([_cand("a", "b")], 8)
        assert len(shards) == 1

    def test_empty_candidates_and_bad_shard_count(self, tmp_path):
        spool = _spool_with(tmp_path, {"a": 1})
        planner = ShardPlanner(spool)
        assert planner.plan([], 4) == []
        with pytest.raises(DiscoveryError):
            planner.plan([_cand("a", "a")], 0)


class TestMergeGroupPlanning:
    """Merge groups: whole components, exact coverage, cost budgeting."""

    def _component_of(self, candidate, groups):
        for group in groups:
            if candidate in group.candidates:
                return group.index
        raise AssertionError(f"{candidate} landed in no group")

    def test_groups_cover_exactly_once_and_never_split_components(
        self, tmp_path
    ):
        # Two independent components: {a,b,c} chained, {x,y} paired.
        spool = _spool_with(
            tmp_path, {"a": 4, "b": 9, "c": 5, "x": 7, "y": 3}
        )
        candidates = [
            _cand("a", "b"), _cand("x", "y"), _cand("c", "b"),
            _cand("y", "x"), _cand("a", "c"),
        ]
        groups = ShardPlanner(spool).plan_merge_groups(candidates, workers=4)
        seen = [c for group in groups for c in group.candidates]
        assert sorted(map(str, seen)) == sorted(map(str, candidates))
        assert len(seen) == len(candidates)
        # Candidates sharing an attribute always share a group.
        abc = {_cand("a", "b"), _cand("c", "b"), _cand("a", "c")}
        xy = {_cand("x", "y"), _cand("y", "x")}
        assert len({self._component_of(c, groups) for c in abc}) == 1
        assert len({self._component_of(c, groups) for c in xy}) == 1
        assert sum(group.components for group in groups) == 2

    def test_transitive_components_stay_whole(self, tmp_path):
        # a-b and b-c share attribute b: one component despite no a-c edge.
        spool = _spool_with(tmp_path, {"a": 2, "b": 2, "c": 2})
        candidates = [_cand("a", "b"), _cand("c", "b")]
        groups = ShardPlanner(spool).plan_merge_groups(candidates, workers=8)
        assert len(groups) == 1
        assert groups[0].components == 1

    def test_small_components_pack_into_budgeted_groups(self, tmp_path):
        sizes = {f"d{i}": 10 for i in range(8)} | {f"r{i}": 10 for i in range(8)}
        spool = _spool_with(tmp_path, sizes)
        candidates = [_cand(f"d{i}", f"r{i}") for i in range(8)]
        groups = ShardPlanner(spool).plan_merge_groups(candidates, workers=2)
        # 8 equal components, budget = total/(2*4): one component per group.
        assert len(groups) == 8
        assert all(group.components == 1 for group in groups)
        # Heaviest-first output: costs never increase along the queue.
        costs = [group.estimated_cost for group in groups]
        assert costs == sorted(costs, reverse=True)

    def test_group_candidates_keep_original_order(self, tmp_path):
        spool = _spool_with(tmp_path, {"a": 3, "b": 5, "c": 2})
        candidates = [_cand("a", "b"), _cand("c", "b"), _cand("b", "a")]
        (group,) = ShardPlanner(spool).plan_merge_groups(candidates, workers=1)
        assert list(group.candidates) == candidates

    def test_deterministic_and_deduplicating(self, tmp_path):
        spool = _spool_with(tmp_path, {"a": 3, "b": 5})
        candidates = [_cand("a", "b"), _cand("a", "b"), _cand("b", "a")]
        planner = ShardPlanner(spool)
        first = planner.plan_merge_groups(candidates, workers=2)
        second = planner.plan_merge_groups(candidates, workers=2)
        assert first == second
        assert sum(len(g.candidates) for g in first) == 2  # duplicate dropped

    def test_empty_and_invalid_inputs(self, tmp_path):
        spool = _spool_with(tmp_path, {"a": 1})
        planner = ShardPlanner(spool)
        assert planner.plan_merge_groups([], workers=2) == []
        with pytest.raises(DiscoveryError):
            planner.plan_merge_groups([_cand("a", "a")], workers=0)


class TestPackCostGroups:
    """Boundary behaviour of the shared packer the adaptive planner leans on."""

    def test_zero_cost_items_all_land_in_one_trailing_group(self):
        items = [(0, f"i{i}") for i in range(10)]
        groups = pack_cost_groups(items, workers=3)
        # The budget floors at 1, so zero-cost items never close a group
        # mid-walk: they all ride the trailing flush, in input order, and
        # none is silently dropped.
        assert groups == [[f"i{i}" for i in range(10)]]

    def test_single_item_heavier_than_whole_budget_gets_own_group(self):
        items = [(1000, "whale")] + [(1, f"minnow{i}") for i in range(8)]
        groups = pack_cost_groups(items, workers=2)
        # Heaviest-first: the over-budget item closes its group alone and
        # comes out first so a worker starts on it immediately.
        assert groups[0] == ["whale"]
        flat = [item for group in groups for item in group]
        assert sorted(flat) == sorted(item for _, item in items)
        assert len(flat) == len(items)

    def test_equal_costs_tie_break_stably_by_input_position(self):
        items = [(5, f"t{i}") for i in range(6)]
        first = pack_cost_groups(items, workers=1)
        second = pack_cost_groups(items, workers=1)
        assert first == second
        # At equal cost the walk order is the input order, so groups are
        # contiguous runs of the input — never an interleaving.
        flat = [item for group in first for item in group]
        assert flat == [f"t{i}" for i in range(6)]

    def test_workers_exceeding_item_count_split_one_item_per_group(self):
        items = [(7, "a"), (3, "b")]
        groups = pack_cost_groups(items, workers=64)
        # Budget collapses to the floor of 1: every item closes its own
        # group (heaviest first), and no empty groups are emitted for the
        # 62 workers with nothing to do.
        assert groups == [["a"], ["b"]]

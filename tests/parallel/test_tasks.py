"""Unit tests of the typed task model and its worker-side registry.

The end-to-end behaviour of the two built-in kinds is covered by the
agreement suite and the pool lifecycle tests; this file pins the registry
contract (loud unknowns, no silent overwrites, pluggable custom kinds) and
the byte-range semantics of the ``merge-partition`` payload.
"""

from __future__ import annotations

import pytest

from repro.core.brute_force import BruteForceValidator
from repro.core.candidates import Candidate
from repro.core.stats import ValidatorStats
from repro.db.schema import AttributeRef
from repro.errors import DiscoveryError
from repro.parallel.merge import make_partition_view, partition_bounds
from repro.parallel.pool import WorkerPool
from repro.parallel.tasks import (
    KIND_BRUTE_FORCE,
    KIND_MERGE_PARTITION,
    KIND_SAMPLE_PRETEST,
    KIND_SPOOL_EXPORT,
    ShardOutcome,
    TaskSpec,
    register_task_kind,
    resolve_task_kind,
    task_kinds,
)
from repro.storage.sorted_sets import SpoolDirectory


def _cand(dep: str, ref: str) -> Candidate:
    return Candidate(AttributeRef("t", dep), AttributeRef("t", ref))


@pytest.fixture()
def spool(tmp_path) -> SpoolDirectory:
    spool = SpoolDirectory.create(tmp_path / "spool", format="binary", block_size=4)
    for name, values in (
        ("a", ["apple", "pear", "zebra"]),
        ("b", ["apple", "banana", "pear", "quince", "zebra"]),
        ("c", ["banana", "quince"]),
    ):
        spool.add_values(AttributeRef("t", name), values)
    spool.save_index()
    return spool


class TestRegistry:
    def test_builtin_kinds_are_registered(self):
        kinds = task_kinds()
        assert KIND_BRUTE_FORCE in kinds
        assert KIND_MERGE_PARTITION in kinds
        assert KIND_SPOOL_EXPORT in kinds
        assert KIND_SAMPLE_PRETEST in kinds

    def test_unknown_kind_is_loud_and_lists_alternatives(self):
        with pytest.raises(DiscoveryError, match="unknown task kind"):
            resolve_task_kind("nosuch")
        with pytest.raises(DiscoveryError, match=KIND_BRUTE_FORCE):
            resolve_task_kind("nosuch")

    def test_duplicate_registration_refused_without_replace(self):
        def executor(spool, task):
            raise AssertionError("never called")

        with pytest.raises(DiscoveryError, match="already registered"):
            register_task_kind(KIND_BRUTE_FORCE, executor)
        # The built-in stayed in place.
        assert resolve_task_kind(KIND_BRUTE_FORCE) is not executor

    def test_rejects_empty_kind(self):
        with pytest.raises(DiscoveryError, match="non-empty"):
            register_task_kind("", lambda spool, task: None)

    def test_custom_kind_runs_in_workers_under_fork(self, spool):
        """A dynamically registered kind executes on the fleet.

        Workers see runtime registrations only under the ``fork`` start
        method (they inherit the parent's registry); import-time
        registration is the portable path, as the module docstring says.
        """

        def count_values(spool_dir, task):
            counts = {
                str(c): spool_dir.get(c.referenced).count
                for c in task.candidates
            }
            return ShardOutcome(
                shard_index=task.task_id,
                decisions={c: True for c in task.candidates},
                vacuous=set(),
                stats=ValidatorStats(
                    validator="count-values",
                    items_read=sum(counts.values()),
                ),
            )

        register_task_kind("test-count-values", count_values, replace=True)
        try:
            with WorkerPool(2, start_method="fork") as pool:
                job = pool.run_job(
                    str(spool.root),
                    [
                        TaskSpec(
                            kind="test-count-values",
                            candidates=(_cand("a", "b"), _cand("c", "b")),
                        )
                    ],
                )
            assert job.outcomes[0].stats.items_read == 10  # 5 + 5
            assert job.stats.tasks_by_kind == {"test-count-values": 1}
        finally:
            # Leave no test kind behind for other tests' registry checks.
            import repro.parallel.tasks as tasks_module

            tasks_module._REGISTRY.pop("test-count-values", None)


class TestMergePartitionPayload:
    def test_full_range_payload_uses_the_bare_spool(self, spool):
        assert make_partition_view(spool, 0, 256) is spool

    def test_restricted_range_clips_cursors(self, spool):
        view = make_partition_view(spool, ord("b"), ord("q"))
        cursor = view.open_cursor(AttributeRef("t", "b"))
        assert cursor.read_batch(100) == ["banana", "pear"]
        cursor.close()

    def test_range_beyond_utf8_lead_bytes_is_rejected(self, spool):
        with pytest.raises(DiscoveryError, match="past every UTF-8 lead byte"):
            make_partition_view(spool, 0xF5, 0x100)

    def test_ranged_tasks_union_to_the_sequential_decisions(self, spool):
        """Explicit byte-range tasks through the pool tile the value space.

        This is the raw ``merge-partition`` task kind the ``range_split``
        escape hatch builds on: every range decides every candidate for its
        slice, and a candidate holds iff no range refuted it.
        """
        candidates = (_cand("a", "b"), _cand("c", "b"), _cand("b", "a"))
        sequential = BruteForceValidator(spool).validate(list(candidates))
        specs = [
            TaskSpec(
                kind=KIND_MERGE_PARTITION,
                candidates=candidates,
                payload=(lo, hi),
            )
            for lo, hi in partition_bounds(4)
        ]
        with WorkerPool(2) as pool:
            job = pool.run_job(str(spool.root), specs)
        assert len(job.outcomes) == len(specs)
        unioned = {
            candidate: all(
                outcome.decisions[candidate] for outcome in job.outcomes
            )
            for candidate in candidates
        }
        assert {str(c): ok for c, ok in unioned.items()} == {
            str(c): ok for c, ok in sequential.decisions.items()
        }


class TestSpoolExportUnit:
    """The worker-side export unit: atomic write, deterministic metadata."""

    def test_run_export_unit_writes_sorted_distinct_atomically(self, tmp_path):
        from repro.storage.exporter import ExportUnit, run_export_unit

        root = tmp_path / "spool"
        root.mkdir()
        unit = ExportUnit(
            table="t",
            column="c",
            qualified="t.c",
            dtype="VARCHAR",
            file_name="t__c.valsb",
            values=("pear", "apple", "pear", "zebra"),
        )
        svf = run_export_unit(str(root), unit, "binary", block_size=2)
        assert svf.count == 3  # distinct
        assert (svf.min_value, svf.max_value) == ("apple", "zebra")
        assert svf.path == str(root / "t__c.valsb")
        assert (root / "t__c.valsb").exists()
        assert not list(root.glob("*.tmp-*")), "temporary name must be gone"
        assert svf.values() == ["apple", "pear", "zebra"]
        # Deterministic: a duplicate execution (requeue race) reproduces
        # byte-identical content and metadata.
        again = run_export_unit(str(root), unit, "binary", block_size=2)
        assert again == svf

    def test_sample_pretest_payload_is_deterministic_across_fleets(self, spool):
        """Same seed, different pools: identical verdicts every time."""
        candidates = (_cand("a", "b"), _cand("b", "c"), _cand("c", "b"))
        verdicts = []
        for _ in range(2):
            with WorkerPool(2) as pool:
                job = pool.run_job(
                    str(spool.root),
                    [
                        TaskSpec(
                            kind=KIND_SAMPLE_PRETEST,
                            candidates=candidates,
                            payload=(2, 11),
                        )
                    ],
                )
            verdicts.append(
                {str(c): ok for c, ok in job.outcomes[0].decisions.items()}
            )
        assert verdicts[0] == verdicts[1]
        assert set(verdicts[0]) == {str(c) for c in candidates}

"""Lifecycle tests of the persistent worker pool.

Cross-validator agreement of the pool-backed engine lives in
``tests/test_validator_agreement.py``; this file covers what only the pool
can get wrong: surviving across jobs, dying workers, double shutdown, warm
spool-handle reuse, and the work-stealing chunk plan it dispatches.
"""

from __future__ import annotations

import pytest

from repro.core.brute_force import BruteForceValidator
from repro.core.candidates import Candidate
from repro.db.schema import AttributeRef
from repro.errors import DiscoveryError
from repro.parallel.engine import ProcessPoolValidationEngine
from repro.parallel.planner import ShardPlanner
from repro.parallel.pool import WorkerPool
from repro.parallel.tasks import KIND_BRUTE_FORCE, KIND_MERGE_PARTITION, TaskSpec
from repro.storage.sorted_sets import SpoolDirectory


def _cand(dep: str, ref: str) -> Candidate:
    return Candidate(AttributeRef("t", dep), AttributeRef("t", ref))


def _brute_specs(chunks, skip_scan: bool = False) -> list[TaskSpec]:
    """One brute-force spec per chunk; a bare candidate becomes its own chunk."""
    return [
        TaskSpec(
            kind=KIND_BRUTE_FORCE,
            candidates=chunk if isinstance(chunk, tuple) else (chunk,),
            payload=(skip_scan,),
        )
        for chunk in chunks
    ]


@pytest.fixture()
def spool(tmp_path) -> SpoolDirectory:
    spool = SpoolDirectory.create(tmp_path / "spool", format="binary", block_size=4)
    for name, count in (
        ("a", 3), ("b", 9), ("c", 5), ("d", 7), ("e", 11), ("f", 2),
    ):
        ref = AttributeRef("t", name)
        spool.add_values(ref, [f"{name}{i:03d}" for i in range(count)])
    spool.save_index()
    return spool


@pytest.fixture()
def candidates() -> list[Candidate]:
    names = ["a", "b", "c", "d", "e", "f"]
    return [_cand(d, r) for d in names for r in names if d != r]


class TestPoolLifecycle:
    def test_pool_survives_across_jobs_and_reuses_handles(
        self, spool, candidates
    ):
        sequential = BruteForceValidator(spool).validate(candidates)
        with WorkerPool(2) as pool:
            engine = ProcessPoolValidationEngine(spool, workers=2, pool=pool)
            first = engine.validate(candidates)
            second = engine.validate(candidates)
            assert first.decisions == sequential.decisions
            assert second.decisions == sequential.decisions
            assert first.stats.items_read == sequential.stats.items_read
            assert second.stats.comparisons == sequential.stats.comparisons
            assert pool.stats.jobs == 2
            # The fleet was spawned once, not per job...
            assert pool.stats.workers_spawned == 2
            assert pool.stats.workers_replaced == 0
            # ...and the second job found every spool handle warm.
            assert pool.stats.spool_handle_reuses > 0
            assert second.stats.extra["pool_warm"] == 1.0

    def test_double_shutdown_is_noop_and_closed_pool_refuses_jobs(
        self, spool, candidates
    ):
        pool = WorkerPool(2)
        engine = ProcessPoolValidationEngine(spool, workers=2, pool=pool)
        engine.validate(candidates)
        pool.shutdown()
        pool.shutdown()  # documented no-op
        assert pool.closed
        with pytest.raises(DiscoveryError, match="shut down"):
            engine.validate(candidates)

    def test_shutdown_before_first_job_is_safe(self):
        pool = WorkerPool(3)
        pool.shutdown()
        pool.shutdown()
        assert pool.stats.workers_spawned == 0

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(DiscoveryError):
            WorkerPool(0)

    def test_worker_death_mid_chunk_requeues_and_agrees(
        self, spool, candidates, tmp_path, monkeypatch
    ):
        """A worker killed mid-shard must not lose or corrupt decisions.

        The fault hook makes exactly one worker ``os._exit`` the first time
        it picks up a chunk touching the marked attribute; the parent must
        requeue that chunk, replace the worker, and still produce the
        sequential run's exact decisions and counters.
        """
        sequential = BruteForceValidator(spool).validate(candidates)
        monkeypatch.setenv("REPRO_POOL_FAULT_ATTR", "t.e")
        monkeypatch.setenv("REPRO_POOL_FAULT_ONCE_DIR", str(tmp_path))
        with WorkerPool(2) as pool:
            got = ProcessPoolValidationEngine(
                spool, workers=2, pool=pool
            ).validate(candidates)
            assert got.decisions == sequential.decisions
            assert got.satisfied == sequential.satisfied
            assert got.stats.items_read == sequential.stats.items_read
            assert got.stats.comparisons == sequential.stats.comparisons
            assert pool.stats.tasks_requeued >= 1
            assert pool.stats.workers_replaced >= 1
        assert (tmp_path / "pool-fault-fired").exists()

    def test_repeated_worker_deaths_fail_the_job_instead_of_hanging(
        self, spool, candidates, monkeypatch
    ):
        """A chunk that reliably kills its worker must fail loudly.

        No once-marker here: every worker that picks up a chunk touching
        the marked attribute dies, which models a deterministic crasher
        (OOM kill, native segfault).  The requeue cap must turn that into
        a DiscoveryError after a few respawns — never an infinite
        respawn-and-requeue loop.
        """
        monkeypatch.setenv("REPRO_POOL_FAULT_ATTR", "t.e")
        with WorkerPool(2) as pool:
            with pytest.raises(DiscoveryError, match="killed its worker"):
                ProcessPoolValidationEngine(
                    spool, workers=2, pool=pool
                ).validate(candidates)
            assert pool.stats.tasks_requeued >= 1

    def test_validator_error_inside_worker_propagates(self, spool):
        """A failing chunk (not a dying worker) raises, not hangs."""
        missing = [_cand("a", "nosuch"), _cand("b", "a"), _cand("c", "a")]
        with WorkerPool(2) as pool:
            with pytest.raises(DiscoveryError, match="failed executing"):
                pool.run_job(str(spool.root), _brute_specs(missing))
            # The pool survives a failed job and serves the next one.
            job = pool.run_job(str(spool.root), _brute_specs([_cand("a", "b")]))
            assert len(job.outcomes) == 1
            assert job.stats.tasks_completed == 1

    def test_empty_job_returns_no_outcomes(self, spool):
        with WorkerPool(2) as pool:
            job = pool.run_job(str(spool.root), [])
            assert job.outcomes == []
            assert job.stats.jobs == 0

    def test_unknown_task_kind_fails_in_the_caller(self, spool, candidates):
        """A bad kind raises before anything is queued or spawned."""
        with WorkerPool(2) as pool:
            with pytest.raises(DiscoveryError, match="unknown task kind"):
                pool.run_job(
                    str(spool.root),
                    [TaskSpec(kind="nosuch", candidates=(candidates[0],))],
                )
            assert pool.stats.jobs == 0
            assert pool.stats.workers_spawned == 0

    def test_per_job_stats_are_deltas_not_lifetime_totals(
        self, spool, candidates
    ):
        """Each run_job reports its own counters next to the pool's totals."""
        with WorkerPool(2) as pool:
            engine = ProcessPoolValidationEngine(spool, workers=2, pool=pool)
            first = engine.validate(candidates)
            second = engine.validate(candidates)
            assert first.pool is not None and second.pool is not None
            assert first.pool["jobs"] == second.pool["jobs"] == 1
            assert (
                first.pool["tasks_completed"]
                == first.pool["tasks_dispatched"]
                > 0
            )
            assert first.pool["tasks_by_kind"] == {
                "brute-force": first.pool["tasks_completed"]
            }
            # The second job runs entirely on warm handles; the first job
            # may warm some of its own chunks but never all of them.
            assert second.pool["spool_handle_reuses"] == second.pool[
                "tasks_completed"
            ]
            assert (
                pool.stats.tasks_completed
                == first.pool["tasks_completed"] + second.pool["tasks_completed"]
            )

    def test_concurrent_jobs_multiplex_one_fleet(self, spool, candidates):
        """Several threads share one pool; every job gets exact results."""
        import threading

        sequential = BruteForceValidator(spool).validate(candidates)
        results: dict[int, object] = {}
        errors: list[Exception] = []
        with WorkerPool(2) as pool:
            def run(slot: int) -> None:
                try:
                    engine = ProcessPoolValidationEngine(
                        spool, workers=2, pool=pool
                    )
                    results[slot] = engine.validate(candidates)
                except Exception as exc:  # surfaced below
                    errors.append(exc)

            threads = [
                threading.Thread(target=run, args=(slot,)) for slot in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors
            assert pool.stats.jobs == 4
            assert pool.stats.workers_spawned == 2
        for got in results.values():
            assert got.decisions == sequential.decisions
            assert got.stats.items_read == sequential.stats.items_read
            assert got.stats.comparisons == sequential.stats.comparisons

    def test_one_job_may_mix_task_kinds(self, spool, candidates):
        """Brute-force chunks and merge partitions ride one job together."""
        brute = candidates[:4]
        merge_group = candidates[4:8]
        specs = _brute_specs([tuple(brute)]) + [
            TaskSpec(
                kind=KIND_MERGE_PARTITION,
                candidates=tuple(merge_group),
                payload=(0, 256),
            )
        ]
        sequential = BruteForceValidator(spool).validate(candidates[:8])
        with WorkerPool(2) as pool:
            job = pool.run_job(str(spool.root), specs)
        assert job.stats.tasks_by_kind == {
            "brute-force": 1, "merge-partition": 1,
        }
        decisions = {}
        for outcome in job.outcomes:
            decisions.update(outcome.decisions)
        assert {str(c): ok for c, ok in decisions.items()} == {
            str(c): ok for c, ok in sequential.decisions.items()
        }

    def test_warm_handle_invalidated_when_spool_rewritten_in_place(
        self, tmp_path
    ):
        """A re-export to the same path must not be served a stale index."""
        from collections import OrderedDict

        from repro.parallel.pool import _open_warm

        root = tmp_path / "s"

        def write(values):
            spool = SpoolDirectory.create(root, format="binary", block_size=4)
            spool.add_values(AttributeRef("t", "a"), values)
            spool.save_index()

        write(["a", "b"])
        handles: OrderedDict = OrderedDict()
        _, warm = _open_warm(handles, str(root))
        assert not warm
        _, warm = _open_warm(handles, str(root))
        assert warm  # unchanged index => warm hit
        write(["a", "b", "c"])  # same path, new content, new index mtime
        spool, warm = _open_warm(handles, str(root))
        assert not warm, "stale handle must be dropped after a rewrite"
        assert spool.get(AttributeRef("t", "a")).count == 3


class TestChunkPlanning:
    def test_chunks_cover_exactly_once_and_heaviest_first(
        self, spool, candidates
    ):
        planner = ShardPlanner(spool)
        chunks = planner.plan_chunks(candidates, workers=2)
        seen = [c for chunk in chunks for c in chunk.candidates]
        assert sorted(map(str, seen)) == sorted(map(str, candidates))
        assert len(seen) == len(candidates)
        # The heaviest candidate is queued first so it cannot become the
        # tail of the job (chunk costs are not strictly monotone — the
        # candidate cap can close a chunk early — but the front of the
        # queue always carries the most expensive work).
        heaviest = max(candidates, key=planner.candidate_cost)
        assert heaviest in chunks[0].candidates

    def test_chunk_size_caps_candidates_per_chunk(self, spool, candidates):
        chunks = ShardPlanner(spool).plan_chunks(
            candidates, workers=2, chunk_size=3
        )
        assert all(len(chunk.candidates) <= 3 for chunk in chunks)

    def test_deterministic_for_same_inputs(self, spool, candidates):
        planner = ShardPlanner(spool)
        first = planner.plan_chunks(candidates, workers=3)
        second = planner.plan_chunks(candidates, workers=3)
        assert first == second

    def test_single_chunk_preserves_sequential_order(self, spool, candidates):
        chunks = ShardPlanner(spool).plan_chunks(
            candidates, workers=1, chunk_size=len(candidates)
        )
        # Cost budgeting may still split; force one chunk to check ordering.
        if len(chunks) == 1:
            assert list(chunks[0].candidates) == candidates
        for chunk in chunks:
            positions = [candidates.index(c) for c in chunk.candidates]
            assert positions == sorted(positions)

    def test_rejects_bad_parameters(self, spool, candidates):
        planner = ShardPlanner(spool)
        with pytest.raises(DiscoveryError):
            planner.plan_chunks(candidates, workers=0)
        with pytest.raises(DiscoveryError):
            planner.plan_chunks(candidates, workers=2, chunk_size=0)
        assert planner.plan_chunks([], workers=2) == []

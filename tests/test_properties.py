"""Property-based tests (hypothesis) on the core invariants.

The central property of the whole library: **every validator computes exactly
the set-containment relation** over rendered values — brute force, both
single-pass variants, the block-wise wrapper, and the three SQL statements
must agree with the trivial in-memory oracle on arbitrary inputs.
"""

from __future__ import annotations

import tempfile

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.blockwise import BlockwiseValidator
from repro.core.brute_force import BruteForceValidator, check_inclusion
from repro.core.candidates import Candidate, apply_pretests, generate_unique_ref_candidates
from repro.core.merge_single_pass import MergeSinglePassValidator
from repro.core.partial_inds import count_containment
from repro.core.pruning import TransitivityPruner
from repro.core.reference import ReferenceValidator
from repro.core.single_pass import SinglePassValidator
from repro.core.sql_approaches import (
    SqlJoinValidator,
    SqlMinusValidator,
    SqlNotInValidator,
)
from repro.db import Column, Database, DataType, TableSchema
from repro.db.schema import AttributeRef
from repro.db.stats import collect_column_stats
from repro.storage.codec import escape_line, render_value, unescape_line
from repro.storage.cursors import MemoryValueCursor
from repro.storage.exporter import export_database
from repro.storage.external_sort import external_sort

# ----------------------------------------------------------------- strategies
value_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), max_size=8
)
value_sets = st.sets(value_text, max_size=12)


@st.composite
def small_databases(draw):
    """A database of one table with 2-4 string/int columns, nulls included."""
    n_cols = draw(st.integers(2, 4))
    n_rows = draw(st.integers(0, 12))
    db = Database("prop")
    columns = []
    for i in range(n_cols):
        is_int = draw(st.booleans())
        columns.append(
            Column(f"c{i}", DataType.INTEGER if is_int else DataType.VARCHAR)
        )
    table = db.create_table(TableSchema("t", columns))
    for _ in range(n_rows):
        row = {}
        for col in columns:
            kind = draw(st.integers(0, 3))
            if kind == 0:
                row[col.name] = None
            elif col.dtype is DataType.INTEGER:
                row[col.name] = draw(st.integers(0, 6))
            else:
                row[col.name] = draw(
                    st.sampled_from(["a", "b", "0", "1", "2", "xy"])
                )
        table.insert(row)
    return db


# ------------------------------------------------------------------ codec
class TestCodecProperties:
    @given(value_text)
    def test_escape_roundtrip(self, text):
        assert unescape_line(escape_line(text)) == text

    @given(value_text)
    def test_escaped_is_single_line(self, text):
        escaped = escape_line(text)
        assert "\n" not in escaped and "\r" not in escaped

    @given(st.integers())
    def test_int_rendering_injective_on_ints(self, value):
        assert render_value(value) == str(value)

    @given(st.lists(st.one_of(st.integers(-50, 50), value_text), max_size=30))
    def test_external_sort_equals_sorted_set(self, values):
        rendered = [render_value(v) if not isinstance(v, str) else v
                    for v in values]
        expected = sorted(set(rendered))
        assert list(external_sort(rendered, max_items_in_memory=3)) == expected


# ------------------------------------------------------------ algorithm 1
class TestInclusionProperties:
    @given(value_sets, value_sets)
    def test_check_inclusion_is_set_containment(self, dep, ref):
        result = check_inclusion(
            MemoryValueCursor(sorted(dep)), MemoryValueCursor(sorted(ref))
        )
        assert result == (dep <= ref)

    @given(value_sets, value_sets)
    def test_count_containment_matches_intersection(self, dep, ref):
        dep_count, matched = count_containment(
            MemoryValueCursor(sorted(dep)), MemoryValueCursor(sorted(ref))
        )
        assert dep_count == len(dep)
        assert matched == len(dep & ref)


# ----------------------------------------------------- validator agreement
def _spool_and_candidates(db, tmp):
    spool, _ = export_database(db, tmp)
    stats = collect_column_stats(db)
    candidates, _ = apply_pretests(
        generate_unique_ref_candidates(stats), stats
    )
    candidates = [
        c for c in candidates if c.dependent in spool and c.referenced in spool
    ]
    return spool, stats, candidates


class TestValidatorAgreement:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(small_databases())
    def test_external_validators_match_oracle(self, db):
        oracle = ReferenceValidator(db)
        with tempfile.TemporaryDirectory() as tmp:
            spool, _, candidates = _spool_and_candidates(db, tmp)
            if not candidates:
                return
            expected = oracle.validate(candidates).decisions
            for validator in (
                BruteForceValidator(spool),
                SinglePassValidator(spool),
                MergeSinglePassValidator(spool),
                BlockwiseValidator(spool, max_open_files=3),
            ):
                got = validator.validate(candidates).decisions
                assert got == expected, type(validator).__name__

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(small_databases())
    def test_sql_validators_match_oracle(self, db):
        oracle = ReferenceValidator(db)
        stats = collect_column_stats(db)
        candidates, _ = apply_pretests(
            generate_unique_ref_candidates(stats), stats
        )
        if not candidates:
            return
        expected = oracle.validate(candidates).decisions
        for validator in (
            SqlJoinValidator(db, stats),
            SqlMinusValidator(db, stats),
            SqlNotInValidator(db, stats),
        ):
            got = validator.validate(candidates).decisions
            assert got == expected, type(validator).__name__

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(small_databases())
    def test_single_pass_io_never_exceeds_brute_force(self, db):
        with tempfile.TemporaryDirectory() as tmp:
            spool, _, candidates = _spool_and_candidates(db, tmp)
            if not candidates:
                return
            brute = BruteForceValidator(spool).validate(candidates)
            single = SinglePassValidator(spool).validate(candidates)
            assert single.stats.items_read <= brute.stats.items_read


# ------------------------------------------------------------ transitivity
class TestTransitivityProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        st.dictionaries(
            st.sampled_from(list("abcde")),
            st.frozensets(st.integers(0, 6)),
            min_size=2,
            max_size=5,
        ),
        st.randoms(use_true_random=False),
    )
    def test_inferences_always_sound(self, sets, rng):
        attrs = {name: AttributeRef("t", name) for name in sets}
        candidates = [
            Candidate(attrs[d], attrs[r])
            for d in sets
            for r in sets
            if d != r
        ]
        rng.shuffle(candidates)
        pruner = TransitivityPruner()
        for candidate in candidates:
            truth = (
                sets[candidate.dependent.column]
                <= sets[candidate.referenced.column]
            )
            inferred = pruner.infer(candidate)
            if inferred is not None:
                assert inferred == truth
            pruner.record(candidate, truth)


# ------------------------------------------------------------ spool invariants
class TestSpoolProperties:
    @settings(max_examples=30, deadline=None)
    @given(value_sets)
    def test_spool_roundtrip(self, values):
        from repro.storage.sorted_sets import SpoolDirectory

        with tempfile.TemporaryDirectory() as tmp:
            spool = SpoolDirectory.create(tmp)
            ref = AttributeRef("t", "c")
            spool.add_values(ref, sorted(values))
            assert spool.get(ref).values() == sorted(values)

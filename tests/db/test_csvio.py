"""Tests for CSV round-tripping and schema inference."""

import json

import pytest

from repro.db.csvio import load_csv_directory, write_csv_directory
from repro.db.database import Database
from repro.db.schema import Column, ForeignKey, TableSchema
from repro.db.types import DataType
from repro.errors import CsvFormatError


@pytest.fixture()
def sample_db() -> Database:
    db = Database("sample")
    db.create_table(
        TableSchema(
            "p",
            [
                Column("id", DataType.INTEGER),
                Column("label", DataType.VARCHAR),
                Column("weight", DataType.FLOAT),
                Column("born", DataType.DATE),
                Column("payload", DataType.BLOB),
            ],
            primary_key="id",
        )
    )
    db.create_table(
        TableSchema(
            "c",
            [Column("pid", DataType.INTEGER)],
            foreign_keys=[ForeignKey("c", "pid", "p", "id")],
        )
    )
    db.table("p").insert(
        {"id": 1, "label": "first, with comma", "weight": 1.5,
         "born": "2004-01-02", "payload": b"\x01\x02"}
    )
    db.table("p").insert(
        {"id": 2, "label": None, "weight": None, "born": None, "payload": None}
    )
    db.table("c").insert({"pid": 1})
    return db


class TestRoundTrip:
    def test_roundtrip_preserves_data(self, sample_db, tmp_path):
        path = write_csv_directory(sample_db, tmp_path / "dump")
        loaded = load_csv_directory(path)
        assert loaded.name == "sample"
        assert loaded.table("p").row(0) == sample_db.table("p").row(0)
        assert loaded.table("p").row(1) == sample_db.table("p").row(1)

    def test_roundtrip_preserves_schema(self, sample_db, tmp_path):
        path = write_csv_directory(sample_db, tmp_path / "dump")
        loaded = load_csv_directory(path)
        assert loaded.table("p").schema.primary_key == "id"
        assert loaded.table("p").column_def("payload").dtype is DataType.BLOB
        fks = loaded.declared_foreign_keys()
        assert len(fks) == 1 and fks[0].ref_table == "p"

    def test_explicit_name_overrides(self, sample_db, tmp_path):
        path = write_csv_directory(sample_db, tmp_path / "dump")
        loaded = load_csv_directory(path, name="renamed")
        assert loaded.name == "renamed"


class TestInference:
    def test_load_without_sidecar_infers_types(self, sample_db, tmp_path):
        path = write_csv_directory(sample_db, tmp_path / "dump")
        (path / "_schema.json").unlink()
        loaded = load_csv_directory(path)
        p = loaded.table("p")
        assert p.column_def("id").dtype is DataType.INTEGER
        assert p.column_def("label").dtype is DataType.VARCHAR
        assert p.column_def("weight").dtype is DataType.FLOAT
        assert p.column_def("born").dtype is DataType.DATE
        # No sidecar => no constraints: the undocumented-source scenario.
        assert p.schema.primary_key is None
        assert loaded.declared_foreign_keys() == []

    def test_empty_cell_is_null(self, sample_db, tmp_path):
        path = write_csv_directory(sample_db, tmp_path / "dump")
        (path / "_schema.json").unlink()
        loaded = load_csv_directory(path)
        assert loaded.table("p").row(1)["label"] is None


class TestErrors:
    def test_missing_directory(self, tmp_path):
        with pytest.raises(CsvFormatError):
            load_csv_directory(tmp_path / "nope")

    def test_no_csv_files(self, tmp_path):
        (tmp_path / "d").mkdir()
        with pytest.raises(CsvFormatError, match="no .csv files"):
            load_csv_directory(tmp_path / "d")

    def test_ragged_row_rejected(self, tmp_path):
        d = tmp_path / "d"
        d.mkdir()
        (d / "t.csv").write_text("a,b\n1,2\n3\n")
        with pytest.raises(CsvFormatError, match="expected 2 cells"):
            load_csv_directory(d)

    def test_duplicate_header_rejected(self, tmp_path):
        d = tmp_path / "d"
        d.mkdir()
        (d / "t.csv").write_text("a,a\n1,2\n")
        with pytest.raises(CsvFormatError, match="duplicate"):
            load_csv_directory(d)

    def test_header_schema_mismatch(self, sample_db, tmp_path):
        path = write_csv_directory(sample_db, tmp_path / "dump")
        (path / "c.csv").write_text("wrong\n1\n")
        with pytest.raises(CsvFormatError, match="header"):
            load_csv_directory(path)

    def test_schema_references_missing_file(self, sample_db, tmp_path):
        path = write_csv_directory(sample_db, tmp_path / "dump")
        (path / "c.csv").unlink()
        with pytest.raises(CsvFormatError, match="missing"):
            load_csv_directory(path)

    def test_malformed_schema_entry(self, sample_db, tmp_path):
        path = write_csv_directory(sample_db, tmp_path / "dump")
        doc = json.loads((path / "_schema.json").read_text())
        del doc["tables"][0]["columns"][0]["type"]
        (path / "_schema.json").write_text(json.dumps(doc))
        with pytest.raises(CsvFormatError, match="malformed"):
            load_csv_directory(path)

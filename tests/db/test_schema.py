"""Tests for schema objects and attribute references."""

import pytest

from repro.db.schema import AttributeRef, Column, ForeignKey, TableSchema
from repro.db.types import DataType
from repro.errors import SchemaError


class TestAttributeRef:
    def test_qualified(self):
        assert AttributeRef("t", "c").qualified == "t.c"

    def test_parse_roundtrip(self):
        ref = AttributeRef.parse("table.column")
        assert ref == AttributeRef("table", "column")

    def test_parse_column_with_dots(self):
        ref = AttributeRef.parse("t.c.x")
        assert ref.table == "t"
        assert ref.column == "c.x"

    def test_parse_rejects_bare_name(self):
        with pytest.raises(SchemaError):
            AttributeRef.parse("nodots")

    def test_parse_rejects_empty_parts(self):
        with pytest.raises(SchemaError):
            AttributeRef.parse(".c")
        with pytest.raises(SchemaError):
            AttributeRef.parse("t.")

    def test_ordering_is_deterministic(self):
        refs = [AttributeRef("b", "x"), AttributeRef("a", "z"), AttributeRef("a", "a")]
        assert sorted(refs) == [
            AttributeRef("a", "a"),
            AttributeRef("a", "z"),
            AttributeRef("b", "x"),
        ]

    def test_hashable(self):
        assert len({AttributeRef("t", "c"), AttributeRef("t", "c")}) == 1


class TestColumn:
    def test_rejects_empty_name(self):
        with pytest.raises(SchemaError):
            Column("", DataType.INTEGER)


class TestTableSchema:
    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a", DataType.INTEGER),
                              Column("a", DataType.VARCHAR)])

    def test_requires_columns(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [])

    def test_requires_name(self):
        with pytest.raises(SchemaError):
            TableSchema("", [Column("a", DataType.INTEGER)])

    def test_primary_key_normalises_column(self):
        schema = TableSchema(
            "t", [Column("id", DataType.INTEGER)], primary_key="id"
        )
        col = schema.column("id")
        assert col.unique
        assert not col.nullable

    def test_primary_key_must_exist(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a", DataType.INTEGER)], primary_key="b")

    def test_foreign_key_table_must_match(self):
        fk = ForeignKey("other", "a", "p", "id")
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a", DataType.INTEGER)], foreign_keys=[fk])

    def test_foreign_key_column_must_exist(self):
        fk = ForeignKey("t", "missing", "p", "id")
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a", DataType.INTEGER)], foreign_keys=[fk])

    def test_attributes_listing(self):
        schema = TableSchema(
            "t", [Column("a", DataType.INTEGER), Column("b", DataType.VARCHAR)]
        )
        assert schema.attributes == [AttributeRef("t", "a"), AttributeRef("t", "b")]

    def test_column_lookup_missing(self):
        schema = TableSchema("t", [Column("a", DataType.INTEGER)])
        with pytest.raises(SchemaError):
            schema.column("zz")

    def test_attribute_helper(self):
        schema = TableSchema("t", [Column("a", DataType.INTEGER)])
        assert schema.attribute("a") == AttributeRef("t", "a")
        with pytest.raises(SchemaError):
            schema.attribute("b")


class TestForeignKey:
    def test_endpoints(self):
        fk = ForeignKey("child", "pid", "parent", "id")
        assert fk.dependent == AttributeRef("child", "pid")
        assert fk.referenced == AttributeRef("parent", "id")

    def test_str(self):
        fk = ForeignKey("child", "pid", "parent", "id")
        assert str(fk) == "child.pid -> parent.id"

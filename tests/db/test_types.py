"""Tests for the column type system."""

import pytest

from repro.db.types import DataType, infer_type, parse_typed, validate_value
from repro.errors import DataError


class TestValidateValue:
    def test_none_passes_any_type(self):
        for dtype in DataType:
            assert validate_value(dtype, None) is None

    def test_integer_accepts_int(self):
        assert validate_value(DataType.INTEGER, 42) == 42

    def test_integer_rejects_string(self):
        with pytest.raises(DataError):
            validate_value(DataType.INTEGER, "42")

    def test_integer_rejects_bool(self):
        with pytest.raises(DataError):
            validate_value(DataType.INTEGER, True)

    def test_float_widens_int(self):
        value = validate_value(DataType.FLOAT, 3)
        assert value == 3.0
        assert isinstance(value, float)

    def test_float_rejects_bool(self):
        with pytest.raises(DataError):
            validate_value(DataType.FLOAT, False)

    def test_varchar_accepts_str(self):
        assert validate_value(DataType.VARCHAR, "x") == "x"

    def test_varchar_rejects_bytes(self):
        with pytest.raises(DataError):
            validate_value(DataType.VARCHAR, b"x")

    def test_date_requires_iso(self):
        assert validate_value(DataType.DATE, "2004-07-15") == "2004-07-15"
        with pytest.raises(DataError):
            validate_value(DataType.DATE, "15.07.2004")

    def test_blob_accepts_bytes_only(self):
        assert validate_value(DataType.BLOB, b"\x00\x01") == b"\x00\x01"
        with pytest.raises(DataError):
            validate_value(DataType.BLOB, "text")

    def test_clob_accepts_long_string(self):
        assert validate_value(DataType.CLOB, "x" * 10_000)


class TestLobFlag:
    def test_lob_types(self):
        assert DataType.CLOB.is_lob
        assert DataType.BLOB.is_lob

    def test_non_lob_types(self):
        for dtype in (DataType.INTEGER, DataType.FLOAT, DataType.VARCHAR,
                      DataType.DATE):
            assert not dtype.is_lob

    def test_numeric_flag(self):
        assert DataType.INTEGER.is_numeric
        assert DataType.FLOAT.is_numeric
        assert not DataType.VARCHAR.is_numeric


class TestInferType:
    def test_all_ints(self):
        assert infer_type([1, 2, 3]) is DataType.INTEGER

    def test_int_strings(self):
        assert infer_type(["1", "22", "-3"]) is DataType.INTEGER

    def test_mixed_numeric(self):
        assert infer_type([1, 2.5]) is DataType.FLOAT

    def test_float_strings(self):
        assert infer_type(["1.5", "2e3"]) is DataType.FLOAT

    def test_dates(self):
        assert infer_type(["2004-01-01", "2005-12-31"]) is DataType.DATE

    def test_strings(self):
        assert infer_type(["abc", "1"]) is DataType.VARCHAR

    def test_all_null_defaults_to_varchar(self):
        assert infer_type([None, None]) is DataType.VARCHAR

    def test_nulls_ignored(self):
        assert infer_type([None, 5, None]) is DataType.INTEGER

    def test_bytes(self):
        assert infer_type([b"ab", b"cd"]) is DataType.BLOB

    def test_bool_is_not_integer(self):
        assert infer_type([True, False]) is DataType.VARCHAR


class TestParseTyped:
    def test_empty_is_null(self):
        assert parse_typed(DataType.INTEGER, "") is None
        assert parse_typed(DataType.VARCHAR, "") is None

    def test_integer(self):
        assert parse_typed(DataType.INTEGER, "-17") == -17

    def test_integer_garbage(self):
        with pytest.raises(DataError):
            parse_typed(DataType.INTEGER, "x1")

    def test_float(self):
        assert parse_typed(DataType.FLOAT, "2.5") == 2.5

    def test_blob_hex_roundtrip(self):
        assert parse_typed(DataType.BLOB, "6162") == b"ab"

    def test_blob_invalid_hex(self):
        with pytest.raises(DataError):
            parse_typed(DataType.BLOB, "zz")

    def test_date_validated(self):
        with pytest.raises(DataError):
            parse_typed(DataType.DATE, "not-a-date")

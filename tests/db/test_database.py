"""Tests for the database catalog."""

import pytest

from repro.db.database import Database
from repro.db.schema import AttributeRef, Column, ForeignKey, TableSchema
from repro.db.types import DataType
from repro.errors import CatalogError


@pytest.fixture()
def db() -> Database:
    database = Database("cat")
    database.create_table(
        TableSchema(
            "a",
            [Column("x", DataType.INTEGER), Column("y", DataType.VARCHAR)],
            primary_key="x",
        )
    )
    database.create_table(
        TableSchema(
            "b",
            [Column("z", DataType.INTEGER)],
            foreign_keys=[ForeignKey("b", "z", "a", "x")],
        )
    )
    database.create_table(TableSchema("empty_t", [Column("e", DataType.VARCHAR)]))
    database.table("a").insert({"x": 1, "y": "one"})
    database.table("b").insert({"z": 1})
    return database


class TestDdl:
    def test_requires_name(self):
        with pytest.raises(CatalogError):
            Database("")

    def test_duplicate_table_rejected(self, db):
        with pytest.raises(CatalogError):
            db.create_table(TableSchema("a", [Column("q", DataType.INTEGER)]))

    def test_drop_table(self, db):
        db.drop_table("empty_t")
        assert not db.has_table("empty_t")

    def test_drop_missing(self, db):
        with pytest.raises(CatalogError):
            db.drop_table("ghost")


class TestLookups:
    def test_table_names_sorted(self, db):
        assert db.table_names == ["a", "b", "empty_t"]

    def test_missing_table(self, db):
        with pytest.raises(CatalogError, match="ghost"):
            db.table("ghost")

    def test_non_empty_tables(self, db):
        assert [t.name for t in db.non_empty_tables()] == ["a", "b"]

    def test_resolve_validates(self, db):
        ref = AttributeRef("a", "x")
        assert db.resolve(ref) == ref
        with pytest.raises(CatalogError):
            db.resolve(AttributeRef("a", "ghost"))
        with pytest.raises(CatalogError):
            db.resolve(AttributeRef("ghost", "x"))


class TestAttributes:
    def test_attributes_skip_empty_tables(self, db):
        refs = db.attributes()
        assert AttributeRef("empty_t", "e") not in refs
        assert AttributeRef("a", "x") in refs

    def test_attributes_with_empty(self, db):
        refs = db.attributes(include_empty_tables=True)
        assert AttributeRef("empty_t", "e") in refs

    def test_attribute_values(self, db):
        assert db.attribute_values(AttributeRef("a", "y")) == ["one"]

    def test_attribute_distinct(self, db):
        db.table("b").insert({"z": 1})
        assert db.attribute_distinct(AttributeRef("b", "z")) == {1}


class TestSummary:
    def test_summary(self, db):
        summary = db.summary()
        assert summary["tables"] == 3
        assert summary["non_empty_tables"] == 2
        assert summary["attributes"] == 3  # a.x, a.y, b.z
        assert summary["rows"] == 2

    def test_declared_foreign_keys(self, db):
        fks = db.declared_foreign_keys()
        assert len(fks) == 1
        assert fks[0].dependent == AttributeRef("b", "z")

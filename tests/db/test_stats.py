"""Tests for per-column statistics (profiling)."""

import pytest

from repro.db.database import Database
from repro.db.schema import AttributeRef, Column, TableSchema
from repro.db.stats import collect_column_stats, profile_column
from repro.db.types import DataType


@pytest.fixture()
def db() -> Database:
    database = Database("stats")
    t = database.create_table(
        TableSchema(
            "t",
            [
                Column("i", DataType.INTEGER),
                Column("s", DataType.VARCHAR),
                Column("f", DataType.FLOAT),
                Column("all_null", DataType.VARCHAR),
            ],
        )
    )
    rows = [
        {"i": 9, "s": "bb", "f": 1.5, "all_null": None},
        {"i": 150, "s": "a", "f": 2.0, "all_null": None},
        {"i": 9, "s": None, "f": None, "all_null": None},
        {"i": None, "s": "ccc", "f": 2.0, "all_null": None},
    ]
    for row in rows:
        t.insert(row)
    return database


class TestProfileColumn:
    def test_counts(self, db):
        st = profile_column(db, AttributeRef("t", "i"))
        assert st.row_count == 4
        assert st.null_count == 1
        assert st.non_null_count == 3
        assert st.distinct_count == 2  # {9, 150}

    def test_rendered_minmax_is_lexicographic(self, db):
        st = profile_column(db, AttributeRef("t", "i"))
        # Paper semantics: lexicographic order over rendered values.
        assert st.min_value == "150"
        assert st.max_value == "9"

    def test_numeric_minmax_is_numeric(self, db):
        st = profile_column(db, AttributeRef("t", "i"))
        assert st.numeric_min == 9
        assert st.numeric_max == 150

    def test_numeric_bounds_absent_for_strings(self, db):
        st = profile_column(db, AttributeRef("t", "s"))
        assert st.numeric_min is None
        assert st.numeric_max is None

    def test_float_rendering_drops_integral_fraction(self, db):
        st = profile_column(db, AttributeRef("t", "f"))
        # 2.0 renders as "2" (TO_CHAR semantics).
        assert st.max_value == "2"
        assert st.distinct_count == 2  # {1.5, 2.0}

    def test_lengths(self, db):
        st = profile_column(db, AttributeRef("t", "s"))
        assert st.min_length == 1
        assert st.max_length == 3

    def test_empty_column(self, db):
        st = profile_column(db, AttributeRef("t", "all_null"))
        assert st.is_empty
        assert st.distinct_count == 0
        assert st.min_value is None and st.max_value is None
        assert not st.is_unique  # empty columns are not referenced candidates


class TestUniqueness:
    def test_unique_measured_not_declared(self, db):
        st = profile_column(db, AttributeRef("t", "s"))
        assert st.is_unique  # bb, a, ccc all distinct

    def test_duplicates_not_unique(self, db):
        st = profile_column(db, AttributeRef("t", "i"))
        assert not st.is_unique  # 9 appears twice

    def test_unique_ignores_nulls(self):
        database = Database("u")
        t = database.create_table(
            TableSchema("t", [Column("c", DataType.VARCHAR)])
        )
        t.insert({"c": "a"})
        t.insert({"c": None})
        t.insert({"c": None})
        st = profile_column(database, AttributeRef("t", "c"))
        assert st.is_unique

    def test_to_char_collision_collapses_distinct(self):
        """An INTEGER 1 and VARCHAR '1' in one column cannot happen, but a
        FLOAT column holding 1.0 and 1 collapses to one rendered value."""
        database = Database("c")
        t = database.create_table(TableSchema("t", [Column("f", DataType.FLOAT)]))
        t.insert({"f": 1})
        t.insert({"f": 1.0})
        st = profile_column(database, AttributeRef("t", "f"))
        assert st.distinct_count == 1
        assert not st.is_unique


class TestCollect:
    def test_collect_skips_empty_tables_by_default(self, db):
        db.create_table(TableSchema("empty", [Column("x", DataType.INTEGER)]))
        stats = collect_column_stats(db)
        assert AttributeRef("empty", "x") not in stats
        stats_all = collect_column_stats(db, include_empty_tables=True)
        assert AttributeRef("empty", "x") in stats_all

    def test_collect_covers_all_attributes(self, db):
        stats = collect_column_stats(db)
        assert set(stats) == {
            AttributeRef("t", "i"),
            AttributeRef("t", "s"),
            AttributeRef("t", "f"),
            AttributeRef("t", "all_null"),
        }

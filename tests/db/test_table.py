"""Tests for columnar table storage and constraint enforcement."""

import pytest

from repro.db.schema import Column, TableSchema
from repro.db.table import Table
from repro.db.types import DataType
from repro.errors import DataError, SchemaError


@pytest.fixture()
def table() -> Table:
    return Table(
        TableSchema(
            "t",
            [
                Column("id", DataType.INTEGER, nullable=False, unique=True),
                Column("name", DataType.VARCHAR),
                Column("score", DataType.FLOAT),
            ],
        )
    )


class TestInsert:
    def test_insert_and_count(self, table):
        table.insert({"id": 1, "name": "a", "score": 0.5})
        assert table.row_count == 1
        assert len(table) == 1
        assert not table.is_empty

    def test_missing_columns_become_null(self, table):
        table.insert({"id": 1})
        assert table.row(0) == {"id": 1, "name": None, "score": None}

    def test_unknown_column_rejected(self, table):
        with pytest.raises(SchemaError, match="no column"):
            table.insert({"id": 1, "bogus": 2})

    def test_type_enforced(self, table):
        with pytest.raises(DataError):
            table.insert({"id": "not-an-int"})

    def test_not_null_enforced(self, table):
        with pytest.raises(DataError, match="NULL not allowed"):
            table.insert({"id": None, "name": "x"})

    def test_unique_enforced(self, table):
        table.insert({"id": 1})
        with pytest.raises(DataError, match="unique"):
            table.insert({"id": 1})

    def test_unique_allows_multiple_nulls(self):
        t = Table(TableSchema("t", [Column("u", DataType.VARCHAR, unique=True)]))
        t.insert({"u": None})
        t.insert({"u": None})
        assert t.row_count == 2

    def test_failed_insert_leaves_no_trace(self, table):
        table.insert({"id": 1, "name": "a"})
        with pytest.raises(DataError):
            table.insert({"id": 1, "name": "b"})
        assert table.row_count == 1
        assert table.column_values("name") == ["a"]

    def test_failed_unique_check_keeps_sets_clean(self):
        # Insert with two unique columns where the *second* one collides:
        # the first column's value must not be remembered.
        t = Table(
            TableSchema(
                "t",
                [
                    Column("u1", DataType.INTEGER, unique=True),
                    Column("u2", DataType.INTEGER, unique=True),
                ],
            )
        )
        t.insert({"u1": 1, "u2": 10})
        with pytest.raises(DataError):
            t.insert({"u1": 2, "u2": 10})
        t.insert({"u1": 2, "u2": 20})  # u1=2 must still be available
        assert t.row_count == 2

    def test_insert_many(self, table):
        count = table.insert_many({"id": i} for i in range(5))
        assert count == 5
        assert table.row_count == 5

    def test_float_column_widens_ints(self, table):
        table.insert({"id": 1, "score": 2})
        assert table.row(0)["score"] == 2.0
        assert isinstance(table.row(0)["score"], float)


class TestReads:
    def test_column_values_include_nulls(self, table):
        table.insert({"id": 1, "name": None})
        table.insert({"id": 2, "name": "x"})
        assert table.column_values("name") == [None, "x"]

    def test_non_null_values(self, table):
        table.insert({"id": 1, "name": None})
        table.insert({"id": 2, "name": "x"})
        table.insert({"id": 3, "name": "x"})
        assert table.non_null_values("name") == ["x", "x"]

    def test_distinct_values(self, table):
        table.insert({"id": 1, "name": "x"})
        table.insert({"id": 2, "name": "x"})
        table.insert({"id": 3, "name": None})
        assert table.distinct_values("name") == {"x"}

    def test_unknown_column_read(self, table):
        with pytest.raises(SchemaError):
            table.column_values("nope")

    def test_rows_iteration_order(self, table):
        table.insert({"id": 2})
        table.insert({"id": 1})
        assert [r["id"] for r in table.rows()] == [2, 1]

    def test_row_index_bounds(self, table):
        table.insert({"id": 1})
        with pytest.raises(IndexError):
            table.row(1)
        with pytest.raises(IndexError):
            table.row(-1)

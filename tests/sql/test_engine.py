"""End-to-end tests for the SQL engine (parse → plan → execute)."""

import pytest

from repro.db import Column, Database, DataType, TableSchema
from repro.errors import SqlExecutionError, SqlPlanError
from repro.sql.engine import SqlEngine


@pytest.fixture()
def db() -> Database:
    database = Database("sql")
    t = database.create_table(
        TableSchema(
            "t",
            [
                Column("a", DataType.INTEGER),
                Column("b", DataType.VARCHAR),
            ],
        )
    )
    for a, b in [(1, "x"), (2, "y"), (2, None), (None, "z")]:
        t.insert({"a": a, "b": b})
    u = database.create_table(
        TableSchema("u", [Column("k", DataType.VARCHAR, unique=True)])
    )
    for k in ["1", "2", "3"]:
        u.insert({"k": k})
    return database


@pytest.fixture()
def engine(db) -> SqlEngine:
    return SqlEngine(db)


class TestProjectionAndFilter:
    def test_select_star(self, engine):
        result = engine.execute("select * from t")
        assert len(result.rows) == 4
        assert result.columns == ["a", "b"]

    def test_select_column(self, engine):
        result = engine.execute("select b from t where a = 2")
        assert result.rows == [("y",), (None,)]

    def test_where_excludes_unknown(self, engine):
        # a = NULL row is UNKNOWN, not TRUE: must be filtered out.
        result = engine.execute("select a from t where a < 10")
        assert len(result.rows) == 3

    def test_is_null(self, engine):
        assert len(engine.execute("select * from t where a is null").rows) == 1

    def test_is_not_null(self, engine):
        assert len(engine.execute("select * from t where a is not null").rows) == 3

    def test_comparison_null_literal_never_true(self, engine):
        assert engine.execute("select * from t where a = null").rows == []

    def test_and_or(self, engine):
        result = engine.execute(
            "select * from t where a = 1 or a = 2 and b = 'y'"
        )
        assert len(result.rows) == 2

    def test_unknown_column(self, engine):
        with pytest.raises(SqlExecutionError, match="unknown column"):
            engine.execute("select nope from t")

    def test_unknown_table(self, engine):
        with pytest.raises(SqlPlanError, match="no table"):
            engine.execute("select * from ghost")

    def test_ambiguous_column(self, engine):
        with pytest.raises(SqlExecutionError, match="ambiguous"):
            engine.execute("select a from t t1 join t t2 on t1.a = t2.a")


class TestAggregates:
    def test_count_star(self, engine):
        assert engine.scalar("select count(*) from t") == 4

    def test_count_column_skips_nulls(self, engine):
        assert engine.scalar("select count(a) from t") == 3

    def test_multiple_counts(self, engine):
        result = engine.execute("select count(a) as ca, count(b) as cb from t")
        assert result.rows == [(3, 3)]
        assert result.columns == ["ca", "cb"]

    def test_count_mixed_with_column_rejected(self, engine):
        with pytest.raises(SqlPlanError, match="mixed"):
            engine.execute("select count(*), a from t")

    def test_scalar_requires_1x1(self, engine):
        with pytest.raises(SqlExecutionError, match="1x1"):
            engine.execute("select * from t").scalar()


class TestDistinctAndOrder:
    def test_distinct(self, engine):
        result = engine.execute("select distinct a from t")
        assert len(result.rows) == 3  # 1, 2, NULL

    def test_distinct_treats_nulls_equal(self, engine, db):
        db.table("t").insert({"a": None, "b": None})
        result = engine.execute("select distinct a from t")
        assert len(result.rows) == 3

    def test_order_by_position(self, engine):
        result = engine.execute(
            "select distinct to_char(a) from t where a is not null order by 1"
        )
        assert result.rows == [("1",), ("2",)]

    def test_order_by_name_desc(self, engine):
        result = engine.execute(
            "select b from t where b is not null order by b desc"
        )
        assert [r[0] for r in result.rows] == ["z", "y", "x"]

    def test_order_by_nulls_last(self, engine):
        result = engine.execute("select b from t order by b")
        assert result.rows[-1] == (None,)

    def test_order_by_position_out_of_range(self, engine):
        with pytest.raises(SqlExecutionError, match="out of range"):
            engine.execute("select a from t order by 5")


class TestToChar:
    def test_to_char_int(self, engine):
        result = engine.execute("select to_char(a) from t where a = 1")
        assert result.rows == [("1",)]

    def test_to_char_null_passthrough(self, engine):
        result = engine.execute("select to_char(a) from t where a is null")
        assert result.rows == [(None,)]

    def test_cross_type_equality(self, engine):
        # TO_CHAR semantics: INTEGER 1 equals VARCHAR '1'.
        matched = engine.scalar(
            "select count(*) from (t dep join u ref on dep.a = ref.k)"
        )
        assert matched == 3  # rows a=1, a=2, a=2


class TestJoin:
    def test_join_excludes_nulls(self, engine):
        # The a=NULL row must not join with anything.
        result = engine.execute("select * from (t join u on t.a = u.k)")
        assert len(result.rows) == 3

    def test_join_output_columns(self, engine):
        result = engine.execute("select * from (t join u on t.a = u.k)")
        assert result.columns == ["a", "b", "k"]

    def test_join_requires_equi_condition(self, engine):
        with pytest.raises(SqlExecutionError, match="equi-join"):
            engine.execute("select * from (t join u on t.a < u.k)")

    def test_join_with_residual_condition(self, engine):
        result = engine.execute(
            "select * from (t join u on t.a = u.k and t.b = 'y')"
        )
        assert len(result.rows) == 1

    def test_self_join_with_aliases(self, engine):
        result = engine.execute(
            "select count(*) from (t t1 join t t2 on t1.a = t2.a)"
        )
        # a=1 matches itself (1), a=2 rows match each other (4).
        assert result.rows == [(5,)]


class TestSetOps:
    def test_minus(self, engine):
        result = engine.execute(
            "select to_char(a) from t where a is not null minus "
            "select k from u"
        )
        assert result.rows == []  # {1,2} - {1,2,3}

    def test_minus_nonempty(self, engine):
        result = engine.execute(
            "select k from u minus select to_char(a) from t"
        )
        assert result.rows == [("3",)]

    def test_minus_is_distinct(self, engine):
        result = engine.execute(
            "select to_char(a) from t minus select k from u where k = '9'"
        )
        # duplicates of a=2 collapse; NULL kept once.
        assert sorted(result.rows, key=str) == [("1",), ("2",), (None,)]

    def test_union(self, engine):
        result = engine.execute("select k from u union select k from u")
        assert len(result.rows) == 3

    def test_union_all(self, engine):
        result = engine.execute("select k from u union all select k from u")
        assert len(result.rows) == 6

    def test_intersect(self, engine):
        result = engine.execute(
            "select to_char(a) from t where a is not null intersect "
            "select k from u"
        )
        assert sorted(result.rows) == [("1",), ("2",)]

    def test_column_count_mismatch(self, engine):
        with pytest.raises(SqlExecutionError, match="column counts"):
            engine.execute("select a, b from t minus select k from u")


class TestRowNum:
    def test_rownum_limit(self, engine):
        assert len(engine.execute("select * from t where rownum < 3").rows) == 2

    def test_rownum_le(self, engine):
        assert len(engine.execute("select * from t where rownum <= 3").rows) == 3

    def test_rownum_eq_one(self, engine):
        assert len(engine.execute("select * from t where rownum = 1").rows) == 1

    def test_rownum_eq_two_is_empty(self, engine):
        # Oracle's famous trap: rownum = 2 can never be satisfied.
        assert engine.execute("select * from t where rownum = 2").rows == []

    def test_rownum_greater_than_one_is_empty(self, engine):
        assert engine.execute("select * from t where rownum > 1").rows == []

    def test_rownum_reversed_literal(self, engine):
        assert len(engine.execute("select * from t where 3 > rownum").rows) == 2

    def test_rownum_combined_with_filter(self, engine):
        result = engine.execute(
            "select * from t where a = 2 and rownum < 2"
        )
        assert len(result.rows) == 1

    def test_rownum_against_column_rejected(self, engine):
        with pytest.raises(SqlPlanError, match="literal"):
            engine.execute("select * from t where rownum < a")


class TestNotInSemantics:
    def test_not_in_basic(self, engine):
        count = engine.scalar(
            "select count(*) from (select k from u where k not in "
            "(select to_char(a) from t where a is not null))"
        )
        assert count == 1  # only '3'

    def test_not_in_with_null_in_subquery_yields_nothing(self, engine):
        # The classic trap: subquery contains NULL -> NOT IN never TRUE.
        count = engine.scalar(
            "select count(*) from (select k from u where k not in "
            "(select to_char(a) from t))"
        )
        assert count == 0

    def test_in_with_empty_subquery_is_false(self, engine):
        count = engine.scalar(
            "select count(*) from (select k from u where k in "
            "(select to_char(a) from t where a = 99))"
        )
        assert count == 0

    def test_not_in_with_empty_subquery_keeps_all(self, engine):
        count = engine.scalar(
            "select count(*) from (select k from u where k not in "
            "(select to_char(a) from t where a = 99))"
        )
        assert count == 3


class TestInstrumentation:
    def test_rows_scanned_accumulates(self, engine):
        engine.execute("select * from t")
        engine.execute("select * from u")
        assert engine.total_stats.rows_scanned == 7
        assert engine.total_stats.statements == 2

    def test_hints_counted(self, engine):
        result = engine.execute("select /*+ first_rows(1) */ * from t")
        assert result.stats.hints_ignored == 1

    def test_rownum_does_not_stop_scan(self, engine):
        # The materialising executor reads the full table even under a
        # rownum limit — the paper's measured behaviour.
        result = engine.execute("select * from t where rownum < 2")
        assert result.stats.rows_scanned == 4

"""Tests for the SQL parser."""

import pytest

from repro.errors import SqlParseError
from repro.sql.ast_nodes import (
    BoolOp,
    ColumnRef,
    Comparison,
    FromSubquery,
    FromTable,
    FuncCall,
    InSubquery,
    IsNull,
    Join,
    Literal,
    NotOp,
    RowNum,
    SelectStmt,
    SetOpStmt,
    StarItem,
)
from repro.sql.parser import parse


class TestSelectBasics:
    def test_select_star(self):
        stmt = parse("select * from t")
        assert isinstance(stmt, SelectStmt)
        assert isinstance(stmt.items[0], StarItem)
        assert stmt.from_item == FromTable("t", None)

    def test_select_columns_with_aliases(self):
        stmt = parse("select a, b as bee, t.c cee from t")
        assert stmt.items[0].expr == ColumnRef(None, "a")
        assert stmt.items[1].alias == "bee"
        assert stmt.items[2].expr == ColumnRef("t", "c")
        assert stmt.items[2].alias == "cee"

    def test_distinct(self):
        assert parse("select distinct a from t").distinct

    def test_table_alias(self):
        stmt = parse("select * from my_table mt")
        assert stmt.from_item == FromTable("my_table", "mt")

    def test_case_insensitive(self):
        stmt = parse("SELECT A FROM T WHERE A = 1")
        assert stmt.items[0].expr == ColumnRef(None, "a")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlParseError, match="trailing"):
            parse("select * from t where a = 1 2")

    def test_bare_identifier_after_alias_rejected(self):
        with pytest.raises(SqlParseError, match="trailing"):
            parse("select * from t alias another")


class TestWhere:
    def test_comparison(self):
        stmt = parse("select * from t where a = 1")
        assert stmt.where == Comparison("=", ColumnRef(None, "a"), Literal(1))

    def test_and_or_precedence(self):
        stmt = parse("select * from t where a = 1 or b = 2 and c = 3")
        assert isinstance(stmt.where, BoolOp)
        assert stmt.where.op == "OR"
        right = stmt.where.operands[1]
        assert isinstance(right, BoolOp) and right.op == "AND"

    def test_not(self):
        stmt = parse("select * from t where not a = 1")
        assert isinstance(stmt.where, NotOp)

    def test_is_null(self):
        stmt = parse("select * from t where a is null")
        assert stmt.where == IsNull(ColumnRef(None, "a"), negated=False)

    def test_is_not_null(self):
        stmt = parse("select * from t where a is not null")
        assert stmt.where == IsNull(ColumnRef(None, "a"), negated=True)

    def test_rownum(self):
        stmt = parse("select * from t where rownum < 2")
        assert stmt.where == Comparison("<", RowNum(), Literal(2))

    def test_in_subquery(self):
        stmt = parse("select * from t where a in (select b from u)")
        assert isinstance(stmt.where, InSubquery)
        assert not stmt.where.negated

    def test_not_in_subquery(self):
        stmt = parse("select * from t where a not in (select b from u)")
        assert isinstance(stmt.where, InSubquery)
        assert stmt.where.negated

    def test_in_value_list_unsupported(self):
        with pytest.raises(SqlParseError, match="subquery"):
            parse("select * from t where a in (1, 2)")

    def test_not_without_in_after_operand(self):
        with pytest.raises(SqlParseError, match="IN"):
            parse("select * from t where a not b")


class TestJoins:
    def test_simple_join(self):
        stmt = parse("select * from a join b on a.x = b.y")
        assert isinstance(stmt.from_item, Join)
        assert stmt.from_item.left == FromTable("a", None)
        assert stmt.from_item.right == FromTable("b", None)

    def test_inner_join_keyword(self):
        stmt = parse("select * from a inner join b on a.x = b.y")
        assert isinstance(stmt.from_item, Join)

    def test_parenthesised_join(self):
        stmt = parse("select count(*) from (a dep join b ref on dep.x = ref.y)")
        assert isinstance(stmt.from_item, Join)
        assert stmt.from_item.left == FromTable("a", "dep")

    def test_join_requires_on(self):
        with pytest.raises(SqlParseError):
            parse("select * from a join b")

    def test_subquery_in_from(self):
        stmt = parse("select * from (select a from t) sub")
        assert isinstance(stmt.from_item, FromSubquery)
        assert stmt.from_item.alias == "sub"


class TestFunctionsAndLiterals:
    def test_count_star(self):
        stmt = parse("select count(*) from t")
        call = stmt.items[0].expr
        assert isinstance(call, FuncCall) and call.star

    def test_count_star_alias(self):
        stmt = parse("select count(*) as n from t")
        assert stmt.items[0].alias == "n"

    def test_to_char(self):
        stmt = parse("select to_char(a) from t")
        call = stmt.items[0].expr
        assert call == FuncCall("TO_CHAR", (ColumnRef(None, "a"),))

    def test_unknown_function(self):
        with pytest.raises(SqlParseError, match="unsupported function"):
            parse("select foo(a) from t")

    def test_string_literal(self):
        stmt = parse("select * from t where a = 'x''y'")
        assert stmt.where.right == Literal("x'y")

    def test_null_literal(self):
        stmt = parse("select * from t where a = null")
        assert stmt.where.right == Literal(None)

    def test_float_literal(self):
        stmt = parse("select * from t where a = 1.5")
        assert stmt.where.right == Literal(1.5)


class TestSetOpsAndOrder:
    def test_minus(self):
        stmt = parse("select a from t minus select b from u")
        assert isinstance(stmt, SetOpStmt)
        assert stmt.op == "MINUS"

    def test_union_all(self):
        stmt = parse("select a from t union all select b from u")
        assert stmt.op == "UNION ALL"

    def test_chained_left_associative(self):
        stmt = parse("select a from t minus select b from u minus select c from v")
        assert isinstance(stmt.left, SetOpStmt)

    def test_order_by_position(self):
        stmt = parse("select a from t order by 1")
        assert stmt.order_by[0].position == 1
        assert stmt.order_by[0].ascending

    def test_order_by_desc(self):
        stmt = parse("select a from t order by a desc")
        assert not stmt.order_by[0].ascending

    def test_order_by_on_set_op(self):
        stmt = parse("select a from t minus select b from u order by 1")
        assert isinstance(stmt, SetOpStmt)
        assert stmt.order_by[0].position == 1


class TestHints:
    def test_hint_recorded(self):
        stmt = parse("select /*+ first_rows(1) */ a from t")
        assert stmt.hints == ("first_rows(1)",)


class TestPaperTemplates:
    """The three statements of Figures 2-4 must parse as written."""

    def test_join_template(self):
        parse(
            "select count(*) as matchedDeps "
            "from (dep_table dep JOIN ref_table ref "
            "on dep.dep_col = ref.ref_col)"
        )

    def test_minus_template(self):
        parse(
            "select count(*) as unmatchedDeps from "
            "( select /*+ first_rows(1) */ * from "
            "( select to_char(dep_col) from dep_table "
            "  where dep_col is not null "
            "  MINUS select to_char(ref_col) from ref_table ) "
            "where rownum < 2)"
        )

    def test_not_in_template(self):
        parse(
            "select count(*) as unmatchedDeps from "
            "( select /*+ first_rows(1) */ dep_col from dep_table "
            "  where dep_col NOT IN ( select ref_col from ref_table ) "
            "  and rownum < 2 )"
        )

"""Unit tests for physical operators and SQL value semantics."""

import pytest

from repro.db import Column, Database, DataType, TableSchema
from repro.errors import SqlExecutionError
from repro.sql.ast_nodes import BoolOp, ColumnRef, Comparison, Literal
from repro.sql.operators import (
    ColHeader,
    Evaluator,
    ExecStats,
    Relation,
    Resolver,
    split_conjuncts,
    sql_compare,
    sql_equal,
    sql_less,
)


class TestSqlEqual:
    def test_same_type(self):
        assert sql_equal(1, 1) is True
        assert sql_equal("a", "b") is False

    def test_null_is_unknown(self):
        assert sql_equal(None, 1) is None
        assert sql_equal(1, None) is None
        assert sql_equal(None, None) is None

    def test_cross_type_to_char(self):
        assert sql_equal(144, "144") is True
        assert sql_equal(1.0, "1") is True
        assert sql_equal(1.5, "1.5") is True

    def test_numeric_comparison_stays_numeric(self):
        assert sql_equal(1, 1.0) is True  # numerically, not "1" vs "1.0"


class TestSqlLess:
    def test_numeric(self):
        assert sql_less(2, 10) is True

    def test_rendered_strings_lexicographic(self):
        # Cross-type falls back to rendered comparison: "10" < "9".
        assert sql_less("10", 9) is True

    def test_null(self):
        assert sql_less(None, 1) is None


class TestSqlCompare:
    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            ("=", 1, 1, True),
            ("<>", 1, 2, True),
            ("<", 1, 2, True),
            (">", 2, 1, True),
            ("<=", 2, 2, True),
            (">=", 1, 2, False),
        ],
    )
    def test_operators(self, op, a, b, expected):
        assert sql_compare(op, a, b) is expected

    def test_unknown_operator(self):
        with pytest.raises(SqlExecutionError):
            sql_compare("~", 1, 2)


class TestResolver:
    def make(self):
        return Resolver(
            [
                ColHeader("a", "t1"),
                ColHeader("b", "t1"),
                ColHeader("a", "t2"),
            ]
        )

    def test_qualified(self):
        resolver = self.make()
        assert resolver.resolve(ColumnRef("t1", "a")) == 0
        assert resolver.resolve(ColumnRef("t2", "a")) == 2

    def test_bare_unique(self):
        assert self.make().resolve(ColumnRef(None, "b")) == 1

    def test_bare_ambiguous(self):
        with pytest.raises(SqlExecutionError, match="ambiguous"):
            self.make().resolve(ColumnRef(None, "a"))

    def test_unknown(self):
        with pytest.raises(SqlExecutionError, match="unknown"):
            self.make().resolve(ColumnRef(None, "zz"))

    def test_try_resolve(self):
        assert self.make().try_resolve(ColumnRef(None, "zz")) is None


class TestEvaluator3VL:
    def evaluator(self):
        return Evaluator(Resolver([ColHeader("x", "t")]))

    def test_and_kleene(self):
        ev = self.evaluator()
        # x = NULL -> UNKNOWN; UNKNOWN AND FALSE -> FALSE.
        pred = BoolOp(
            "AND",
            (
                Comparison("=", ColumnRef(None, "x"), Literal(1)),
                Comparison("=", Literal(1), Literal(2)),
            ),
        )
        assert ev.truth(pred, (None,)) is False

    def test_and_unknown(self):
        ev = self.evaluator()
        pred = BoolOp(
            "AND",
            (
                Comparison("=", ColumnRef(None, "x"), Literal(1)),
                Comparison("=", Literal(1), Literal(1)),
            ),
        )
        assert ev.truth(pred, (None,)) is None

    def test_or_kleene(self):
        ev = self.evaluator()
        pred = BoolOp(
            "OR",
            (
                Comparison("=", ColumnRef(None, "x"), Literal(1)),
                Comparison("=", Literal(1), Literal(1)),
            ),
        )
        assert ev.truth(pred, (None,)) is True

    def test_rownum_outside_where_rejected(self):
        from repro.sql.ast_nodes import RowNum

        ev = self.evaluator()
        with pytest.raises(SqlExecutionError, match="ROWNUM"):
            ev.value(RowNum(), (1,))


class TestSplitConjuncts:
    def test_flattens_nested_ands(self):
        a = Comparison("=", Literal(1), Literal(1))
        b = Comparison("=", Literal(2), Literal(2))
        c = Comparison("=", Literal(3), Literal(3))
        expr = BoolOp("AND", (a, BoolOp("AND", (b, c))))
        assert split_conjuncts(expr) == [a, b, c]

    def test_or_not_split(self):
        expr = BoolOp(
            "OR",
            (
                Comparison("=", Literal(1), Literal(1)),
                Comparison("=", Literal(2), Literal(2)),
            ),
        )
        assert split_conjuncts(expr) == [expr]


class TestStatsMerge:
    def test_merge(self):
        a = ExecStats(statements=1, rows_scanned=10)
        b = ExecStats(statements=2, rows_scanned=5, joins=1)
        a.merge(b)
        assert a.statements == 3
        assert a.rows_scanned == 15
        assert a.joins == 1


class TestScanInstrumentation:
    def test_rows_scanned(self):
        from repro.sql.operators import TableScanOp

        db = Database("x")
        t = db.create_table(TableSchema("t", [Column("a", DataType.INTEGER)]))
        t.insert({"a": 1})
        t.insert({"a": 2})
        stats = ExecStats()
        relation = TableScanOp(t, "t").execute(stats)
        assert stats.rows_scanned == 2
        assert relation.rows == [(1,), (2,)]
        assert relation.column_names == ["a"]

"""Tests for the SQL tokenizer."""

import pytest

from repro.errors import SqlLexError
from repro.sql.lexer import Token, tokenize


def kinds(sql: str) -> list[str]:
    return [t.kind for t in tokenize(sql)]


def texts(sql: str) -> list[str]:
    return [t.text for t in tokenize(sql)[:-1]]  # drop EOF


class TestBasics:
    def test_keywords_fold_upper(self):
        assert texts("select From WHERE") == ["SELECT", "FROM", "WHERE"]

    def test_identifiers_fold_lower(self):
        tokens = tokenize("MyTable my_col")
        assert tokens[0] == Token("IDENT", "mytable", 0)
        assert tokens[1].text == "my_col"

    def test_eof_always_present(self):
        assert kinds("")[-1] == "EOF"

    def test_numbers(self):
        tokens = tokenize("42 3.14")
        assert (tokens[0].kind, tokens[0].text) == ("INTNUM", "42")
        assert (tokens[1].kind, tokens[1].text) == ("FLOATNUM", "3.14")

    def test_operators(self):
        assert kinds("= < > <= >= <> !=")[:-1] == [
            "EQ", "LT", "GT", "LE", "GE", "NE", "NE",
        ]

    def test_punctuation(self):
        assert kinds("( ) , . *")[:-1] == [
            "LPAREN", "RPAREN", "COMMA", "DOT", "STAR",
        ]

    def test_rownum_is_keyword(self):
        assert tokenize("rownum")[0] == Token("KEYWORD", "ROWNUM", 0)


class TestStrings:
    def test_simple_string(self):
        token = tokenize("'hello'")[0]
        assert token.kind == "STRING"
        assert token.text == "hello"

    def test_escaped_quote(self):
        assert tokenize("'it''s'")[0].text == "it's"

    def test_empty_string(self):
        assert tokenize("''")[0].text == ""

    def test_unterminated(self):
        with pytest.raises(SqlLexError, match="unterminated string"):
            tokenize("'oops")


class TestCommentsAndHints:
    def test_line_comment_skipped(self):
        assert texts("select -- comment\n1") == ["SELECT", "1"]

    def test_block_comment_skipped(self):
        assert texts("select /* anything */ 1") == ["SELECT", "1"]

    def test_hint_preserved(self):
        tokens = tokenize("select /*+ first_rows(1) */ x")
        assert tokens[1].kind == "HINT"
        assert tokens[1].text == "first_rows(1)"

    def test_unterminated_comment(self):
        with pytest.raises(SqlLexError, match="unterminated comment"):
            tokenize("select /* oops")


class TestErrors:
    def test_unknown_character(self):
        with pytest.raises(SqlLexError, match="unexpected character"):
            tokenize("select @")

    def test_offset_reported(self):
        with pytest.raises(SqlLexError, match="offset 7"):
            tokenize("select @")

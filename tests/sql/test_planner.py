"""Unit tests for the planner's ROWNUM translation and plan shapes."""

import math

import pytest

from repro.db import Column, Database, DataType, TableSchema
from repro.errors import SqlPlanError
from repro.sql.ast_nodes import Comparison, Literal, RowNum
from repro.sql.operators import (
    AggregateCountOp,
    DistinctOp,
    FilterOp,
    HashJoinOp,
    ProjectOp,
    RowNumLimitOp,
    SetOp,
    SortOp,
    SubqueryOp,
    TableScanOp,
)
from repro.sql.parser import parse
from repro.sql.planner import _rownum_limit, plan_query


@pytest.fixture()
def db() -> Database:
    database = Database("plan")
    t = database.create_table(TableSchema("t", [Column("a", DataType.INTEGER)]))
    t.insert({"a": 1})
    database.create_table(TableSchema("u", [Column("b", DataType.INTEGER)]))
    return database


def limit_for(op: str, k) -> float:
    return _rownum_limit(Comparison(op, RowNum(), Literal(k)))


class TestRownumLimits:
    def test_less_than(self):
        assert limit_for("<", 2) == 1
        assert limit_for("<", 1) == 0

    def test_less_equal(self):
        assert limit_for("<=", 3) == 3
        assert limit_for("<=", 0) == 0

    def test_equal_one(self):
        assert limit_for("=", 1) == 1

    def test_equal_beyond_one_is_empty(self):
        assert limit_for("=", 2) == 0

    def test_greater_than(self):
        assert limit_for(">", 1) == 0
        assert limit_for(">", 0.5) == math.inf

    def test_greater_equal(self):
        assert limit_for(">=", 1) == math.inf
        assert limit_for(">=", 2) == 0

    def test_fractional_bound(self):
        assert limit_for("<", 2.5) == 2

    def test_reversed_operands(self):
        conj = Comparison(">", Literal(2), RowNum())  # 2 > rownum
        assert _rownum_limit(conj) == 1

    def test_rejects_non_literal(self):
        from repro.sql.ast_nodes import ColumnRef

        conj = Comparison("<", RowNum(), ColumnRef(None, "a"))
        with pytest.raises(SqlPlanError):
            _rownum_limit(conj)

    def test_rejects_string_literal(self):
        conj = Comparison("<", RowNum(), Literal("2"))
        with pytest.raises(SqlPlanError, match="number"):
            _rownum_limit(conj)


class TestPlanShapes:
    def plan(self, sql, db):
        return plan_query(parse(sql), db)

    def test_simple_scan(self, db):
        plan = self.plan("select * from t", db)
        assert isinstance(plan, TableScanOp)

    def test_filter_then_limit_order(self, db):
        plan = self.plan("select * from t where a = 1 and rownum < 2", db)
        # Limit sits ABOVE the filter: rownum counts filtered rows.
        assert isinstance(plan, RowNumLimitOp)
        assert isinstance(plan.child, FilterOp)

    def test_projection(self, db):
        plan = self.plan("select a from t", db)
        assert isinstance(plan, ProjectOp)

    def test_distinct_above_projection(self, db):
        plan = self.plan("select distinct a from t", db)
        assert isinstance(plan, DistinctOp)
        assert isinstance(plan.child, ProjectOp)

    def test_order_by_topmost(self, db):
        plan = self.plan("select a from t order by 1", db)
        assert isinstance(plan, SortOp)

    def test_count_aggregate(self, db):
        plan = self.plan("select count(*) from t", db)
        assert isinstance(plan, AggregateCountOp)

    def test_join_plan(self, db):
        plan = self.plan("select * from t join u on t.a = u.b", db)
        assert isinstance(plan, HashJoinOp)

    def test_subquery_plan(self, db):
        plan = self.plan("select * from (select a from t) s", db)
        assert isinstance(plan, SubqueryOp)

    def test_minus_plan(self, db):
        plan = self.plan("select a from t minus select b from u", db)
        assert isinstance(plan, SetOp)
        assert plan.op == "MINUS"

    def test_rownum_only_where(self, db):
        plan = self.plan("select * from t where rownum < 5", db)
        assert isinstance(plan, RowNumLimitOp)
        assert isinstance(plan.child, TableScanOp)

    def test_unknown_table_rejected_at_plan_time(self, db):
        with pytest.raises(SqlPlanError):
            self.plan("select * from ghost", db)

    def test_rownum_under_or_rejected(self, db):
        with pytest.raises(SqlPlanError, match="conjunct"):
            self.plan("select * from t where rownum < 2 or a = 1", db)

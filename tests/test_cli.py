"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


def _shutdown_stats(err: str) -> dict:
    """The serve shutdown JSON object — the last JSON line on stderr."""
    for line in reversed(err.splitlines()):
        line = line.strip()
        if line.startswith("{"):
            return json.loads(line)
    raise AssertionError(f"no shutdown JSON on stderr: {err!r}")


@pytest.fixture()
def biosql_dump(tmp_path):
    path = tmp_path / "dump"
    assert main(["generate", "biosql", str(path), "--scale", "tiny"]) == 0
    return path


class TestGenerate:
    def test_generate_writes_csvs(self, tmp_path, capsys):
        path = tmp_path / "scop"
        assert main(["generate", "scop", str(path), "--scale", "tiny"]) == 0
        assert (path / "scop_cla.csv").exists()
        assert (path / "_schema.json").exists()
        out = capsys.readouterr().out
        assert "4 tables" in out

    def test_generate_seed(self, tmp_path):
        main(["generate", "scop", str(tmp_path / "a"), "--scale", "tiny",
              "--seed", "1"])
        main(["generate", "scop", str(tmp_path / "b"), "--scale", "tiny",
              "--seed", "1"])
        assert (
            (tmp_path / "a" / "scop_cla.csv").read_text()
            == (tmp_path / "b" / "scop_cla.csv").read_text()
        )

    def test_unknown_dataset_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", "nosuch", str(tmp_path / "x")])


class TestProfile:
    def test_profile_lists_columns(self, biosql_dump, capsys):
        assert main(["profile", str(biosql_dump)]) == 0
        out = capsys.readouterr().out
        assert "sg_bioentry.accession" in out
        assert "unique" in out

    def test_missing_directory_is_error(self, tmp_path, capsys):
        assert main(["profile", str(tmp_path / "nope")]) == 2
        assert "error:" in capsys.readouterr().err


class TestDiscover:
    def test_discover_prints_inds(self, biosql_dump, capsys):
        assert main(["discover", str(biosql_dump)]) == 0
        out = capsys.readouterr().out
        assert "satisfied INDs" in out
        assert "sg_biosequence.bioentry_id [= sg_bioentry.bioentry_id" in out

    def test_discover_json(self, biosql_dump, tmp_path, capsys):
        json_path = tmp_path / "result.json"
        assert main(
            ["discover", str(biosql_dump), "--json", str(json_path)]
        ) == 0
        doc = json.loads(json_path.read_text())
        assert doc["satisfied_count"] > 0

    def test_discover_strategy_flag(self, biosql_dump, capsys):
        assert main(
            ["discover", str(biosql_dump), "--strategy", "brute-force"]
        ) == 0
        assert "strategy=brute-force" in capsys.readouterr().out

    def test_discover_transitivity_with_batch_strategy_is_error(
        self, biosql_dump, capsys
    ):
        assert main(
            ["discover", str(biosql_dump), "--strategy", "single-pass",
             "--transitivity"]
        ) == 2
        assert "sequential" in capsys.readouterr().err

    def test_discover_spool_format_flag(self, biosql_dump, capsys):
        outputs = []
        for fmt in ("text", "binary"):
            assert main(
                ["discover", str(biosql_dump), "--spool-format", fmt]
            ) == 0
            out = capsys.readouterr().out
            assert "satisfied INDs" in out
            outputs.append(sorted(l for l in out.splitlines() if "[=" in l))
        # The spool layout must never change what discovery finds.
        assert outputs[0] == outputs[1]

    def test_discover_export_workers_flag(self, biosql_dump, capsys):
        assert main(
            ["discover", str(biosql_dump), "--export-workers", "4"]
        ) == 0
        assert "satisfied INDs" in capsys.readouterr().out

    def test_discover_rejects_unknown_spool_format(self, biosql_dump):
        with pytest.raises(SystemExit):
            main(["discover", str(biosql_dump), "--spool-format", "parquet"])

    def test_discover_rejects_bad_workers(self, biosql_dump, capsys):
        assert main(
            ["discover", str(biosql_dump), "--export-workers", "0"]
        ) == 2
        assert "export_workers" in capsys.readouterr().err

    def test_discover_compression_and_mmap_flags(self, biosql_dump, capsys):
        outputs = []
        for extra in (
            ("--spool-compression", "zlib", "--mmap-reads", "on"),
            ("--spool-compression", "none", "--mmap-reads", "off"),
        ):
            assert main(["discover", str(biosql_dump), *extra]) == 0
            out = capsys.readouterr().out
            assert "satisfied INDs" in out
            outputs.append(sorted(l for l in out.splitlines() if "[=" in l))
        # Neither compression nor the byte source changes any answer.
        assert outputs[0] == outputs[1]

    def test_discover_rejects_compression_on_text_spools(
        self, biosql_dump, capsys
    ):
        assert main(
            ["discover", str(biosql_dump), "--spool-format", "text",
             "--spool-compression", "zlib"]
        ) == 2
        assert "binary spool format" in capsys.readouterr().err

    def test_discover_rejects_mmap_on_text_spools(self, biosql_dump, capsys):
        assert main(
            ["discover", str(biosql_dump), "--spool-format", "text",
             "--mmap-reads", "on"]
        ) == 2
        assert "mmap_reads" in capsys.readouterr().err


class TestSpoolInspect:
    def _keep_spool(self, biosql_dump, tmp_path, **config_kwargs):
        from repro.core.runner import DiscoveryConfig, discover_inds
        from repro.db.csvio import load_csv_directory

        spool_dir = tmp_path / "spool"
        discover_inds(
            load_csv_directory(str(biosql_dump)),
            DiscoveryConfig(
                spool_dir=str(spool_dir), keep_spool=True, **config_kwargs
            ),
        )
        return spool_dir

    def test_inspect_compressed_spool(self, biosql_dump, tmp_path, capsys):
        spool_dir = self._keep_spool(
            biosql_dump, tmp_path, spool_compression="zlib"
        )
        assert main(["spool", "inspect", str(spool_dir)]) == 0
        out = capsys.readouterr().out
        assert "frame v3 (binary)" in out
        assert "compression zlib" in out
        assert "sg_bioentry.accession" in out
        assert "compression:" in out and "stored payload bytes" in out

    def test_inspect_uncompressed_binary_spool(
        self, biosql_dump, tmp_path, capsys
    ):
        spool_dir = self._keep_spool(biosql_dump, tmp_path)
        assert main(["spool", "inspect", str(spool_dir)]) == 0
        out = capsys.readouterr().out
        assert "frame v2 (binary)" in out
        assert "compression none" in out
        # Uncompressed indexes carry no byte counts — no ratio line.
        assert "stored payload bytes" not in out

    def test_inspect_text_spool(self, biosql_dump, tmp_path, capsys):
        spool_dir = self._keep_spool(
            biosql_dump, tmp_path, spool_format="text"
        )
        assert main(["spool", "inspect", str(spool_dir)]) == 0
        assert "frame v1 (text)" in capsys.readouterr().out

    def test_inspect_missing_directory_is_error(self, tmp_path, capsys):
        assert main(["spool", "inspect", str(tmp_path / "nope")]) == 2
        assert "not a spool directory" in capsys.readouterr().err


class TestAccession:
    def test_accession_strict(self, biosql_dump, capsys):
        assert main(["accession", str(biosql_dump)]) == 0
        out = capsys.readouterr().out
        assert "sg_bioentry.accession" in out
        assert "sg_reference.crc" in out

    def test_accession_no_candidates(self, tmp_path, capsys):
        d = tmp_path / "plain"
        d.mkdir()
        (d / "t.csv").write_text("a\n1\n2\n")
        assert main(["accession", str(d)]) == 0
        assert "no accession-number candidates" in capsys.readouterr().out


class TestPipeline:
    def test_pipeline_single_source(self, biosql_dump, capsys):
        assert main(["pipeline", str(biosql_dump)]) == 0
        out = capsys.readouterr().out
        assert "primary relation shortlist: sg_bioentry" in out
        assert "FK guess" in out

    def test_pipeline_surrogate_filter_toggle(self, biosql_dump, capsys):
        assert main(
            ["pipeline", str(biosql_dump), "--no-surrogate-filter"]
        ) == 0
        assert "surrogate filter" not in capsys.readouterr().out


class TestHelpText:
    """The PR 2 flags must state their defaults and interactions (self-doc)."""

    def _discover_help(self, capsys):
        with pytest.raises(SystemExit):
            main(["discover", "--help"])
        # argparse wraps help text at terminal width; normalise so the
        # assertions are about content, not line breaks.
        return " ".join(capsys.readouterr().out.split())

    def test_validation_workers_help_states_default_and_scope(self, capsys):
        out = self._discover_help(capsys)
        assert "--validation-workers" in out
        assert "1 (the default)" in out
        assert "brute-force and merge-single-pass" in out

    def test_reuse_spool_and_cache_dir_help_state_interaction(self, capsys):
        out = self._discover_help(capsys)
        assert "default: off" in out
        assert "only consulted with --reuse-spool" in out
        assert "repro-ind/spools" in out  # the actual default path is shown

    def test_serve_and_cache_are_documented(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        assert "serve" in out
        assert "cache" in out


class TestServe:
    def _serve(self, monkeypatch, capsys, lines, *extra_args):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("".join(lines)))
        code = main(["serve", *extra_args])
        captured = capsys.readouterr()
        responses = [
            json.loads(line)
            for line in captured.out.splitlines()
            if line.strip()
        ]
        return code, responses, captured.err

    def test_two_requests_share_one_session(
        self, biosql_dump, tmp_path, monkeypatch, capsys
    ):
        request = json.dumps({"directory": str(biosql_dump)}) + "\n"
        code, responses, err = self._serve(
            monkeypatch,
            capsys,
            [request, request],
            "--validation-workers", "2",
            "--reuse-spool", "--cache-dir", str(tmp_path / "cache"),
        )
        assert code == 0
        assert len(responses) == 2
        assert responses[0]["satisfied"] == responses[1]["satisfied"]
        assert responses[0]["satisfied_count"] > 0
        assert not responses[0]["spool_cache_hit"]
        assert responses[1]["spool_cache_hit"]
        shutdown = _shutdown_stats(err)
        assert shutdown["event"] == "serve-shutdown"
        assert shutdown["requests"] == 2
        assert shutdown["pool"]["spool_handle_reuses"] > 0, \
            "second request must find warm spool handles"

    def test_response_carries_bytes_counters(
        self, biosql_dump, monkeypatch, capsys
    ):
        request = json.dumps({"directory": str(biosql_dump)}) + "\n"
        code, responses, _ = self._serve(monkeypatch, capsys, [request])
        assert code == 0
        (response,) = responses
        # Binary spools (the default) charge decoded payload bytes.
        assert response["bytes_read"] > 0
        assert response["bytes_stored"] > 0

    def test_bad_request_answers_error_and_keeps_serving(
        self, biosql_dump, monkeypatch, capsys
    ):
        lines = [
            "not json\n",
            json.dumps({"no_directory": True}) + "\n",
            json.dumps({"directory": str(biosql_dump)}) + "\n",
        ]
        code, responses, err = self._serve(monkeypatch, capsys, lines)
        assert code == 0
        assert "error" in responses[0]
        assert "error" in responses[1]
        assert responses[2]["satisfied_count"] > 0

    def test_request_can_override_strategy(
        self, biosql_dump, monkeypatch, capsys
    ):
        lines = [
            json.dumps(
                {"directory": str(biosql_dump), "strategy": "merge-single-pass"}
            )
            + "\n",
        ]
        code, responses, _ = self._serve(monkeypatch, capsys, lines)
        assert code == 0
        assert responses[0]["strategy"] == "merge-single-pass"

    def test_quit_stops_the_loop(self, biosql_dump, monkeypatch, capsys):
        lines = ["quit\n", json.dumps({"directory": str(biosql_dump)}) + "\n"]
        code, responses, _ = self._serve(monkeypatch, capsys, lines)
        assert code == 0
        assert responses == []

    def test_responses_carry_request_ids_and_pool_stats(
        self, biosql_dump, monkeypatch, capsys
    ):
        lines = [
            json.dumps({"directory": str(biosql_dump), "id": "mine"}) + "\n",
            json.dumps({"directory": str(biosql_dump)}) + "\n",
            "not json\n",
        ]
        code, responses, _ = self._serve(
            monkeypatch, capsys, lines, "--validation-workers", "2"
        )
        assert code == 0
        by_id = {r["id"]: r for r in responses}
        # Explicit id, then namespaced line fallbacks (never a bare ordinal,
        # which could collide with a client-chosen integer id).
        assert set(by_id) == {"mine", "line-2", "line-3"}
        assert "error" in by_id["line-3"]
        # Per-request pool stats: each request ran its own job on the pool.
        assert by_id["mine"]["pool"]["jobs"] == 1
        assert by_id["mine"]["pool"]["tasks_by_kind"].keys() == {"brute-force"}

    def test_rejects_bad_max_inflight(self, monkeypatch, capsys):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO(""))
        assert main(["serve", "--max-inflight", "0"]) == 2
        assert "--max-inflight" in capsys.readouterr().err

    def test_stats_request_returns_metrics_and_trace_ids(
        self, biosql_dump, monkeypatch, capsys
    ):
        lines = [
            json.dumps({"directory": str(biosql_dump), "id": "d1"}) + "\n",
            json.dumps({"kind": "stats", "id": "s1"}) + "\n",
        ]
        code, responses, _ = self._serve(
            monkeypatch, capsys, lines, "--validation-workers", "2"
        )
        assert code == 0
        by_id = {r["id"]: r for r in responses}
        # Every discovery response carries a per-request trace id ...
        assert isinstance(by_id["d1"]["trace_id"], str)
        assert "trace" not in by_id["d1"]  # ... but not the tree, untraced
        # ... and the stats kind answers with the metrics snapshot.
        stats = by_id["s1"]
        assert stats["kind"] == "stats"
        counters = stats["metrics"]["counters"]
        assert counters["pool_tasks_total{kind=brute-force}"] > 0
        assert stats["pool"]["tasks_completed"] > 0
        assert "validate_seconds" in stats["metrics"]["histograms"]

    def test_request_can_opt_into_full_trace(
        self, biosql_dump, monkeypatch, capsys
    ):
        lines = [
            json.dumps(
                {"directory": str(biosql_dump), "id": "t1", "trace": True}
            )
            + "\n",
        ]
        code, responses, _ = self._serve(monkeypatch, capsys, lines)
        assert code == 0
        trace = responses[0]["trace"]
        assert trace["trace_id"] == responses[0]["trace_id"]
        names = {span["name"] for span in trace["spans"]}
        assert "discover" in names and "validate" in names


class TestTraceDump:
    def _traced_result(self, biosql_dump, tmp_path, capsys):
        out = tmp_path / "result.json"
        assert main([
            "discover", str(biosql_dump), "--strategy", "brute-force",
            "--validation-workers", "2", "--trace", "--json", str(out),
        ]) == 0
        assert "coverage=" in capsys.readouterr().out
        return out

    def test_dump_chrome_format(self, biosql_dump, tmp_path, capsys):
        result = self._traced_result(biosql_dump, tmp_path, capsys)
        target = tmp_path / "trace.json"
        assert main([
            "trace", "dump", str(result), "-o", str(target),
        ]) == 0
        assert "spans written" in capsys.readouterr().out
        events = json.loads(target.read_text())
        assert events and all(e["ph"] == "X" for e in events)
        assert {e["name"] for e in events} >= {"discover", "validate"}
        # Worker-stamped task spans land in their own pid lanes.
        assert len({e["pid"] for e in events}) > 1

    def test_dump_json_format_to_stdout(self, biosql_dump, tmp_path, capsys):
        result = self._traced_result(biosql_dump, tmp_path, capsys)
        assert main(["trace", "dump", str(result), "--format", "json"]) == 0
        trace = json.loads(capsys.readouterr().out)
        assert trace["clock"] == "monotonic"
        assert trace["spans"]

    def test_dump_accepts_bare_trace_object(
        self, biosql_dump, tmp_path, capsys
    ):
        result = self._traced_result(biosql_dump, tmp_path, capsys)
        bare = tmp_path / "bare.json"
        assert main([
            "trace", "dump", str(result), "--format", "json",
            "-o", str(bare),
        ]) == 0
        capsys.readouterr()
        assert main(["trace", "dump", str(bare), "--format", "json"]) == 0
        assert json.loads(capsys.readouterr().out)["spans"]

    def test_dump_untraced_result_is_an_error(
        self, biosql_dump, tmp_path, capsys
    ):
        out = tmp_path / "untraced.json"
        assert main([
            "discover", str(biosql_dump), "--json", str(out),
        ]) == 0
        capsys.readouterr()
        assert main(["trace", "dump", str(out)]) == 2
        assert "no trace" in capsys.readouterr().err

    def test_dump_missing_file_is_an_error(self, tmp_path, capsys):
        assert main(["trace", "dump", str(tmp_path / "nope.json")]) == 2
        assert "error:" in capsys.readouterr().err


class TestLogging:
    def test_log_level_configures_repro_logger_idempotently(self):
        import logging

        from repro.cli import _configure_logging

        logger = logging.getLogger("repro")
        before_handlers = list(logger.handlers)
        before_level = logger.level
        try:
            _configure_logging("debug")
            assert logger.level == logging.DEBUG
            first = [
                h for h in logger.handlers if h not in before_handlers
            ]
            _configure_logging("warning")
            assert logger.level == logging.WARNING
            # Repeated configuration never stacks a second handler.
            assert [
                h for h in logger.handlers if h not in before_handlers
            ] == first
        finally:
            logger.setLevel(before_level)
            for handler in list(logger.handlers):
                if handler not in before_handlers:
                    logger.removeHandler(handler)

    def test_pool_lifecycle_events_are_logged(self, biosql_dump, caplog):
        import logging

        with caplog.at_level(logging.DEBUG, logger="repro.parallel.pool"):
            assert main([
                "discover", str(biosql_dump), "--strategy", "brute-force",
                "--validation-workers", "2",
            ]) == 0
        spawns = [
            r for r in caplog.records
            if r.name == "repro.parallel.pool" and "spawned" in r.message
        ]
        assert len(spawns) == 2


class TestServeConcurrent:
    """Overlapping requests over one warm pool answer exactly like serial."""

    def _serve(self, monkeypatch, capsys, lines, *extra_args):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("".join(lines)))
        code = main(["serve", *extra_args])
        captured = capsys.readouterr()
        responses = [
            json.loads(line)
            for line in captured.out.splitlines()
            if line.strip()
        ]
        return code, responses, captured.err

    def test_overlapping_requests_agree_with_serial_by_id(
        self, biosql_dump, monkeypatch, capsys
    ):
        lines = [
            json.dumps({"directory": str(biosql_dump), "id": "r1"}) + "\n",
            json.dumps(
                {
                    "directory": str(biosql_dump),
                    "id": "r2",
                    "strategy": "merge-single-pass",
                }
            )
            + "\n",
            json.dumps({"directory": str(biosql_dump), "id": "r3"}) + "\n",
        ]
        runs = {}
        for label, inflight in (("serial", "1"), ("concurrent", "3")):
            code, responses, err = self._serve(
                monkeypatch,
                capsys,
                lines,
                "--validation-workers", "2",
                "--max-inflight", inflight,
            )
            assert code == 0
            shutdown = _shutdown_stats(err)
            assert shutdown["max_inflight"] == int(inflight)
            assert shutdown["requests"] == 3
            runs[label] = {r["id"]: r for r in responses}
        assert set(runs["serial"]) == set(runs["concurrent"]) == {
            "r1", "r2", "r3",
        }
        for request_id in runs["serial"]:
            serial = dict(runs["serial"][request_id])
            concurrent = dict(runs["concurrent"][request_id])
            # Timing, pool-placement counters, and per-request trace ids
            # legitimately differ between the two modes; everything the
            # request *answers* must be byte-identical.
            for volatile in ("seconds", "pool", "trace_id"):
                serial.pop(volatile), concurrent.pop(volatile)
            assert serial == concurrent, f"request {request_id} diverges"


class TestServeSignals:
    """SIGINT/SIGTERM drain in-flight work instead of orphaning workers."""

    @pytest.mark.parametrize("signum_name", ["SIGINT", "SIGTERM"])
    def test_signal_drains_and_exits_cleanly(
        self, biosql_dump, tmp_path, signum_name
    ):
        import os
        import pathlib
        import signal as signal_module
        import subprocess
        import sys as sys_module

        repo_root = pathlib.Path(__file__).resolve().parents[1]
        env = dict(os.environ, PYTHONPATH=str(repo_root / "src"))
        proc = subprocess.Popen(
            [
                sys_module.executable, "-m", "repro.cli", "serve",
                "--validation-workers", "2", "--max-inflight", "2",
            ],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            cwd=str(repo_root),
            env=env,
        )
        try:
            proc.stdin.write(
                json.dumps({"directory": str(biosql_dump), "id": "one"}) + "\n"
            )
            proc.stdin.flush()
            response = json.loads(proc.stdout.readline())
            assert response["id"] == "one"
            assert response["satisfied_count"] > 0
            proc.send_signal(getattr(signal_module, signum_name))
            out, err = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, err
        shutdown = _shutdown_stats(err)
        assert shutdown["event"] == "serve-shutdown"
        assert shutdown["drained-on-signal"] == signum_name
        assert shutdown["requests"] == 1

    def test_second_signal_falls_through_to_default(self, tmp_path):
        """The drain restores the old handlers before waiting (escape hatch)."""
        import signal as signal_module

        from repro.cli import _serve_signal_handlers

        old_int = signal_module.getsignal(signal_module.SIGINT)
        old_term = signal_module.getsignal(signal_module.SIGTERM)
        previous = _serve_signal_handlers()
        try:
            assert previous[signal_module.SIGINT] is old_int
            assert previous[signal_module.SIGTERM] is old_term
            assert signal_module.getsignal(signal_module.SIGINT) is not old_int
        finally:
            for signum, handler in previous.items():
                signal_module.signal(signum, handler)
        assert signal_module.getsignal(signal_module.SIGINT) is old_int
        assert signal_module.getsignal(signal_module.SIGTERM) is old_term


class TestCacheCommand:
    def _warm_cache(self, dump, cache_dir):
        assert main([
            "discover", str(dump), "--strategy", "brute-force",
            "--reuse-spool", "--cache-dir", str(cache_dir),
        ]) == 0

    def test_list_shows_entries_then_evict_all_empties(
        self, biosql_dump, tmp_path, capsys
    ):
        cache_dir = tmp_path / "cache"
        self._warm_cache(biosql_dump, cache_dir)
        capsys.readouterr()
        assert main(["cache", "list", "--cache-dir", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "binary" in out
        assert "total: 1 entries" in out
        assert "eviction order" in out
        assert main(
            ["cache", "evict", "--cache-dir", str(cache_dir), "--all"]
        ) == 0
        out = capsys.readouterr().out
        assert "evicted 1 entries" in out
        assert main(["cache", "list", "--cache-dir", str(cache_dir)]) == 0
        assert "is empty" in capsys.readouterr().out

    def test_evict_by_budget_and_fingerprint(
        self, biosql_dump, tmp_path, capsys
    ):
        cache_dir = tmp_path / "cache"
        self._warm_cache(biosql_dump, cache_dir)
        capsys.readouterr()
        assert main([
            "cache", "evict", "--cache-dir", str(cache_dir),
            "--max-bytes", "1000000000",
        ]) == 0
        assert "evicted 0 entries" in capsys.readouterr().out
        assert main(["cache", "list", "--cache-dir", str(cache_dir)]) == 0
        fingerprint = capsys.readouterr().out.splitlines()[1].split()[0]
        assert main([
            "cache", "evict", "--cache-dir", str(cache_dir),
            "--fingerprint", fingerprint[:10],
        ]) == 0
        assert "evicted 1 entries" in capsys.readouterr().out

    def test_evict_requires_exactly_one_selector(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["cache", "evict", "--cache-dir", str(tmp_path)])


class TestPipelineFlags:
    """The pooled-pipeline flags: self-documenting help, end-to-end wiring."""

    def _discover_help(self, capsys):
        with pytest.raises(SystemExit):
            main(["discover", "--help"])
        return " ".join(capsys.readouterr().out.split())

    def test_parallel_flags_document_defaults_and_requirements(self, capsys):
        out = self._discover_help(capsys)
        assert "--parallel-export" in out
        assert "--parallel-pretest" in out
        assert "--sampling-size" in out
        assert "requires --sampling-size > 0" in out
        assert "byte-identical" in out

    def test_serve_accepts_the_pipeline_flags(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve", "--help"])
        out = " ".join(capsys.readouterr().out.split())
        assert "--parallel-export" in out
        assert "--parallel-pretest" in out

    def test_discover_runs_the_pooled_pipeline(self, biosql_dump, capsys):
        assert main([
            "discover", str(biosql_dump), "--strategy", "brute-force",
            "--validation-workers", "2", "--sampling-size", "4",
            "--parallel-export", "--parallel-pretest",
        ]) == 0
        pooled = capsys.readouterr().out
        assert main([
            "discover", str(biosql_dump), "--strategy", "brute-force",
            "--sampling-size", "4",
        ]) == 0
        sequential = capsys.readouterr().out
        # Identical discovery summary and IND list, pooled or not.
        assert [
            line for line in pooled.splitlines() if line.startswith("  ")
        ] == [
            line for line in sequential.splitlines() if line.startswith("  ")
        ]

    def test_parallel_pretest_without_sampling_is_rejected(
        self, biosql_dump, capsys
    ):
        assert main([
            "discover", str(biosql_dump), "--parallel-pretest",
        ]) == 2
        assert "sampling_size" in capsys.readouterr().err

    def test_serve_response_pool_covers_all_task_kinds(
        self, biosql_dump, monkeypatch, capsys
    ):
        import io

        request = json.dumps({"directory": str(biosql_dump), "id": "r1"}) + "\n"
        monkeypatch.setattr("sys.stdin", io.StringIO(request))
        assert main([
            "serve", "--strategy", "brute-force", "--validation-workers", "2",
            "--sampling-size", "4", "--parallel-export", "--parallel-pretest",
        ]) == 0
        captured = capsys.readouterr()
        response = json.loads(captured.out.splitlines()[0])
        kinds = response["pool"]["tasks_by_kind"]
        assert {"spool-export", "sample-pretest", "brute-force"} <= set(kinds)
        # The shutdown stats object aggregates the same kinds.
        shutdown = _shutdown_stats(captured.err)
        assert "spool-export" in shutdown["pool"]["tasks_by_kind"]

    def test_cache_hit_reports_skipped_parallel_export(
        self, biosql_dump, tmp_path, monkeypatch, capsys
    ):
        """A reuse-spool hit must *say* it ignored parallel_export.

        Before the fix the only evidence was a missing ``spool-export``
        key in ``tasks_by_kind`` — indistinguishable from an export that
        was never requested.  The response now carries ``export_skipped``
        explicitly, and this smoke asserts it on both legs.
        """
        import io

        request = json.dumps({"directory": str(biosql_dump)}) + "\n"
        monkeypatch.setattr("sys.stdin", io.StringIO(request + request))
        assert main([
            "serve", "--strategy", "brute-force", "--validation-workers", "2",
            "--parallel-export", "--reuse-spool",
            "--cache-dir", str(tmp_path / "cache"),
        ]) == 0
        responses = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
            if line.strip()
        ]
        assert len(responses) == 2
        assert responses[0]["spool_cache_hit"] is False
        assert responses[0]["export_skipped"] is False
        assert responses[1]["spool_cache_hit"] is True
        assert responses[1]["export_skipped"] is True
        # The old inference still holds — the hit dispatched no export task.
        assert "spool-export" in responses[0]["pool"]["tasks_by_kind"]
        assert "spool-export" not in responses[1]["pool"]["tasks_by_kind"]

    def test_serve_idle_reap_drains_fleet_between_requests(
        self, biosql_dump, monkeypatch, capsys
    ):
        """``--idle-reap-seconds 0`` reaps after every request; answers hold."""
        import io

        request = json.dumps({"directory": str(biosql_dump)}) + "\n"
        monkeypatch.setattr("sys.stdin", io.StringIO(request + request))
        assert main([
            "serve", "--strategy", "brute-force", "--validation-workers", "2",
            "--idle-reap-seconds", "0",
        ]) == 0
        captured = capsys.readouterr()
        responses = [
            json.loads(line)
            for line in captured.out.splitlines()
            if line.strip()
        ]
        assert len(responses) == 2
        assert responses[0]["satisfied"] == responses[1]["satisfied"]
        assert responses[0]["satisfied_count"] > 0
        # Both requests reaped their 2 workers; the second respawned a
        # full fleet first (4 spawned overall, none counted as deaths).
        shutdown = _shutdown_stats(captured.err)
        assert shutdown["pool"]["workers_reaped"] == 4
        assert shutdown["pool"]["workers_spawned"] == 4
        assert shutdown["pool"]["workers_replaced"] == 0


class TestCacheOrphans:
    def test_list_surfaces_orphans_and_evict_reclaims_them(
        self, tmp_path, capsys
    ):
        from repro.storage.spool_cache import SpoolCache

        cache_dir = tmp_path / "cache"
        SpoolCache(cache_dir).prepare("f" * 64)  # crashed-export shape
        assert main(["cache", "list", "--cache-dir", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "orphans: 1 in-progress/abandoned temp dirs" in out
        assert "staging" in out
        assert "evict --orphans" in out
        assert main(
            ["cache", "evict", "--cache-dir", str(cache_dir), "--orphans"]
        ) == 0
        assert "evicted 1 entries" in capsys.readouterr().out
        assert main(["cache", "list", "--cache-dir", str(cache_dir)]) == 0
        assert "is empty" in capsys.readouterr().out

    def test_orphan_eviction_is_exclusive_with_other_selectors(self, tmp_path):
        with pytest.raises(SystemExit):
            main([
                "cache", "evict", "--cache-dir", str(tmp_path),
                "--orphans", "--all",
            ])


class TestIncrementalCli:
    def test_discover_incremental_first_run_reports_full(
        self, biosql_dump, capsys
    ):
        assert main(["discover", str(biosql_dump), "--incremental"]) == 0
        assert "delta: full run (no-prior)" in capsys.readouterr().out

    def test_discover_incremental_rejects_transitivity(
        self, biosql_dump, capsys
    ):
        assert main(
            ["discover", str(biosql_dump), "--incremental", "--transitivity"]
        ) == 2
        assert "transitivity" in capsys.readouterr().err

    def test_watch_rounds_emit_delta_accounting(self, biosql_dump, capsys):
        assert main(
            ["watch", str(biosql_dump), "--rounds", "2", "--interval", "0"]
        ) == 0
        lines = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
            if line.strip()
        ]
        assert [line["round"] for line in lines] == [1, 2]
        assert lines[0]["delta"] == {"mode": "full", "reason": "no-prior"}
        assert lines[1]["delta"]["mode"] == "delta"
        assert lines[1]["delta"]["attributes_changed"] == 0
        assert lines[1]["delta"]["candidates_revalidated"] == 0
        assert lines[1]["satisfied"] == lines[0]["satisfied"]
        assert lines[1]["satisfied_count"] > 0

    def test_watch_picks_up_mutations_between_rounds(
        self, biosql_dump, monkeypatch, capsys
    ):
        """The poll loop's sleep is the mutation window: drop one CSV row."""
        target = max(
            biosql_dump.glob("*.csv"),
            key=lambda p: len(p.read_text().splitlines()),
        )

        def mutate(_seconds):
            rows = target.read_text().splitlines()
            target.write_text("\n".join(rows[:-1]) + "\n")

        monkeypatch.setattr("repro.cli.time.sleep", mutate)
        assert main(
            ["watch", str(biosql_dump), "--rounds", "2", "--interval", "1"]
        ) == 0
        lines = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
            if line.strip()
        ]
        delta = lines[1]["delta"]
        assert delta["mode"] == "delta"
        assert delta["attributes_changed"] >= 1
        assert delta["decisions_reused"] >= 1, (
            "a one-table edit must not revalidate the whole candidate set"
        )

    def test_watch_rejects_negative_rounds(self, biosql_dump, capsys):
        assert main(
            ["watch", str(biosql_dump), "--rounds", "-1"]
        ) == 2
        assert "--rounds" in capsys.readouterr().err


class TestServeDelta:
    def test_response_carries_null_delta_without_incremental(
        self, biosql_dump, monkeypatch, capsys
    ):
        import io

        request = json.dumps({"directory": str(biosql_dump)}) + "\n"
        monkeypatch.setattr("sys.stdin", io.StringIO(request))
        assert main(["serve"]) == 0
        (response,) = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
            if line.strip()
        ]
        assert response["delta"] is None

    def test_incremental_serve_reports_delta_per_request(
        self, biosql_dump, monkeypatch, capsys
    ):
        import io

        request = json.dumps({"directory": str(biosql_dump)}) + "\n"
        monkeypatch.setattr("sys.stdin", io.StringIO(request + request))
        assert main(["serve", "--incremental"]) == 0
        first, second = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
            if line.strip()
        ]
        assert first["delta"] == {"mode": "full", "reason": "no-prior"}
        assert second["delta"]["mode"] == "delta"
        assert second["delta"]["attributes_changed"] == 0
        assert second["satisfied"] == first["satisfied"]

"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


@pytest.fixture()
def biosql_dump(tmp_path):
    path = tmp_path / "dump"
    assert main(["generate", "biosql", str(path), "--scale", "tiny"]) == 0
    return path


class TestGenerate:
    def test_generate_writes_csvs(self, tmp_path, capsys):
        path = tmp_path / "scop"
        assert main(["generate", "scop", str(path), "--scale", "tiny"]) == 0
        assert (path / "scop_cla.csv").exists()
        assert (path / "_schema.json").exists()
        out = capsys.readouterr().out
        assert "4 tables" in out

    def test_generate_seed(self, tmp_path):
        main(["generate", "scop", str(tmp_path / "a"), "--scale", "tiny",
              "--seed", "1"])
        main(["generate", "scop", str(tmp_path / "b"), "--scale", "tiny",
              "--seed", "1"])
        assert (
            (tmp_path / "a" / "scop_cla.csv").read_text()
            == (tmp_path / "b" / "scop_cla.csv").read_text()
        )

    def test_unknown_dataset_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", "nosuch", str(tmp_path / "x")])


class TestProfile:
    def test_profile_lists_columns(self, biosql_dump, capsys):
        assert main(["profile", str(biosql_dump)]) == 0
        out = capsys.readouterr().out
        assert "sg_bioentry.accession" in out
        assert "unique" in out

    def test_missing_directory_is_error(self, tmp_path, capsys):
        assert main(["profile", str(tmp_path / "nope")]) == 2
        assert "error:" in capsys.readouterr().err


class TestDiscover:
    def test_discover_prints_inds(self, biosql_dump, capsys):
        assert main(["discover", str(biosql_dump)]) == 0
        out = capsys.readouterr().out
        assert "satisfied INDs" in out
        assert "sg_biosequence.bioentry_id [= sg_bioentry.bioentry_id" in out

    def test_discover_json(self, biosql_dump, tmp_path, capsys):
        json_path = tmp_path / "result.json"
        assert main(
            ["discover", str(biosql_dump), "--json", str(json_path)]
        ) == 0
        doc = json.loads(json_path.read_text())
        assert doc["satisfied_count"] > 0

    def test_discover_strategy_flag(self, biosql_dump, capsys):
        assert main(
            ["discover", str(biosql_dump), "--strategy", "brute-force"]
        ) == 0
        assert "strategy=brute-force" in capsys.readouterr().out

    def test_discover_transitivity_with_batch_strategy_is_error(
        self, biosql_dump, capsys
    ):
        assert main(
            ["discover", str(biosql_dump), "--strategy", "single-pass",
             "--transitivity"]
        ) == 2
        assert "sequential" in capsys.readouterr().err

    def test_discover_spool_format_flag(self, biosql_dump, capsys):
        outputs = []
        for fmt in ("text", "binary"):
            assert main(
                ["discover", str(biosql_dump), "--spool-format", fmt]
            ) == 0
            out = capsys.readouterr().out
            assert "satisfied INDs" in out
            outputs.append(sorted(l for l in out.splitlines() if "[=" in l))
        # The spool layout must never change what discovery finds.
        assert outputs[0] == outputs[1]

    def test_discover_export_workers_flag(self, biosql_dump, capsys):
        assert main(
            ["discover", str(biosql_dump), "--export-workers", "4"]
        ) == 0
        assert "satisfied INDs" in capsys.readouterr().out

    def test_discover_rejects_unknown_spool_format(self, biosql_dump):
        with pytest.raises(SystemExit):
            main(["discover", str(biosql_dump), "--spool-format", "parquet"])

    def test_discover_rejects_bad_workers(self, biosql_dump, capsys):
        assert main(
            ["discover", str(biosql_dump), "--export-workers", "0"]
        ) == 2
        assert "export_workers" in capsys.readouterr().err


class TestAccession:
    def test_accession_strict(self, biosql_dump, capsys):
        assert main(["accession", str(biosql_dump)]) == 0
        out = capsys.readouterr().out
        assert "sg_bioentry.accession" in out
        assert "sg_reference.crc" in out

    def test_accession_no_candidates(self, tmp_path, capsys):
        d = tmp_path / "plain"
        d.mkdir()
        (d / "t.csv").write_text("a\n1\n2\n")
        assert main(["accession", str(d)]) == 0
        assert "no accession-number candidates" in capsys.readouterr().out


class TestPipeline:
    def test_pipeline_single_source(self, biosql_dump, capsys):
        assert main(["pipeline", str(biosql_dump)]) == 0
        out = capsys.readouterr().out
        assert "primary relation shortlist: sg_bioentry" in out
        assert "FK guess" in out

    def test_pipeline_surrogate_filter_toggle(self, biosql_dump, capsys):
        assert main(
            ["pipeline", str(biosql_dump), "--no-surrogate-filter"]
        ) == 0
        assert "surrogate filter" not in capsys.readouterr().out

"""Guard rails on the public API surface and error hierarchy."""

import importlib

import pytest

import repro
from repro.errors import (
    BenchmarkError,
    CatalogError,
    CsvFormatError,
    DataError,
    DiscoveryError,
    ReproError,
    SchemaError,
    SpoolError,
    SqlError,
    SqlExecutionError,
    SqlLexError,
    SqlParseError,
    SqlPlanError,
    ValidatorError,
)

PUBLIC_MODULES = [
    "repro",
    "repro.bench",
    "repro.core",
    "repro.datagen",
    "repro.db",
    "repro.discovery",
    "repro.sql",
    "repro.storage",
]


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_module_all_entries_resolve(module_name):
    module = importlib.import_module(module_name)
    assert hasattr(module, "__all__"), f"{module_name} must declare __all__"
    for name in module.__all__:
        assert hasattr(module, name), f"{module_name}.{name} missing"


def test_version_string():
    assert repro.__version__.count(".") == 2


def test_top_level_exports_are_usable():
    db = repro.Database("api")
    table = db.create_table(
        repro.TableSchema(
            "t",
            [repro.Column("a", repro.DataType.INTEGER)],
        )
    )
    table.insert({"a": 1})
    result = repro.discover_inds(db, repro.DiscoveryConfig())
    assert result.satisfied_count == 0  # one attribute, no candidates


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            BenchmarkError, CatalogError, CsvFormatError, DataError,
            DiscoveryError, SchemaError, SpoolError, SqlError,
            SqlExecutionError, SqlLexError, SqlParseError, SqlPlanError,
            ValidatorError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    @pytest.mark.parametrize(
        "exc", [SqlLexError, SqlParseError, SqlPlanError, SqlExecutionError]
    )
    def test_sql_errors_share_base(self, exc):
        assert issubclass(exc, SqlError)

    def test_one_catch_all(self):
        with pytest.raises(ReproError):
            repro.Database("")


def test_ind_str_is_stable():
    """The '[=' rendering is part of the public output format (CLI, docs)."""
    ind = repro.IND(
        repro.AttributeRef("child", "pid"), repro.AttributeRef("parent", "id")
    )
    assert str(ind) == "child.pid [= parent.id"

"""Pydocstyle-style spot checks on the public API surface.

Not a style linter (no dependency to install): the one rule that matters for
an API meant to be read — every public module, class, function, method, and
property in the modules this check covers carries a docstring.  The module
list is the *touched* public surface (runner, results, cache, pool, engines,
bench harness, CLI); extend it as modules get their docstring pass.
"""

from __future__ import annotations

import importlib
import inspect

import pytest

#: Modules whose public surface has had its docstring pass.
DOCUMENTED_MODULES = [
    "repro.bench.harness",
    "repro.cli",
    "repro.core.brute_force",
    "repro.core.results",
    "repro.core.runner",
    "repro.core.stats",
    "repro.obs",
    "repro.obs.metrics",
    "repro.obs.trace",
    "repro.parallel",
    "repro.parallel.engine",
    "repro.parallel.export",
    "repro.parallel.planner",
    "repro.parallel.pool",
    "repro.parallel.merge",
    "repro.parallel.tasks",
    "repro.storage.spool_cache",
]


def _public_members(module):
    """Top-level public classes and functions defined *in* this module."""
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-exports are checked where they are defined
        yield name, obj


def _class_members(cls):
    """Public methods and properties declared directly on ``cls``."""
    for name, obj in vars(cls).items():
        if name.startswith("_"):
            continue
        if isinstance(obj, property):
            yield name, obj.fget
        elif inspect.isfunction(obj):
            yield name, obj
        elif isinstance(obj, (staticmethod, classmethod)):
            yield name, obj.__func__


def _missing(module) -> list[str]:
    missing = []
    if not (module.__doc__ or "").strip():
        missing.append(module.__name__)
    for name, obj in _public_members(module):
        if not (obj.__doc__ or "").strip():
            missing.append(f"{module.__name__}.{name}")
        if inspect.isclass(obj):
            for member_name, member in _class_members(obj):
                if not (member.__doc__ or "").strip():
                    missing.append(f"{module.__name__}.{name}.{member_name}")
    return missing


@pytest.mark.parametrize("module_name", DOCUMENTED_MODULES)
def test_public_surface_is_documented(module_name):
    module = importlib.import_module(module_name)
    missing = _missing(module)
    assert not missing, (
        f"public names without docstrings in {module_name}: {missing}"
    )

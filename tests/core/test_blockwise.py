"""Tests for the block-wise single-pass validator (Sec. 4.2)."""

import pytest

from repro.core.blockwise import BlockwiseValidator
from repro.core.candidates import Candidate
from repro.core.merge_single_pass import MergeSinglePassValidator
from repro.db.schema import AttributeRef
from repro.errors import ValidatorError
from repro.storage.sorted_sets import SpoolDirectory


@pytest.fixture()
def spool(tmp_path) -> SpoolDirectory:
    s = SpoolDirectory.create(tmp_path / "spool")
    pool = [f"{v:02d}" for v in range(30)]
    import random

    rng = random.Random(4)
    for i in range(12):
        s.add_values(
            AttributeRef("t", f"c{i:02d}"),
            sorted(rng.sample(pool, rng.randint(1, 20))),
        )
    return s


@pytest.fixture()
def candidates(spool) -> list[Candidate]:
    refs = spool.attributes()
    return [Candidate(d, r) for d in refs for r in refs if d != r]


class TestCorrectness:
    @pytest.mark.parametrize("budget", [2, 3, 5, 8, 100])
    def test_matches_unbounded_at_any_budget(self, spool, candidates, budget):
        unbounded = MergeSinglePassValidator(spool).validate(candidates)
        blocked = BlockwiseValidator(
            spool, max_open_files=budget
        ).validate(candidates)
        assert blocked.decisions == unbounded.decisions

    def test_observer_engine(self, spool, candidates):
        unbounded = MergeSinglePassValidator(spool).validate(candidates)
        blocked = BlockwiseValidator(
            spool, max_open_files=6, engine="observer"
        ).validate(candidates)
        assert blocked.decisions == unbounded.decisions


class TestBudget:
    def test_peak_respects_budget(self, spool, candidates):
        for budget in (2, 4, 8):
            result = BlockwiseValidator(
                spool, max_open_files=budget
            ).validate(candidates)
            assert result.stats.peak_open_files <= budget

    def test_smaller_budget_more_subruns_more_io(self, spool, candidates):
        tight = BlockwiseValidator(spool, max_open_files=2).validate(candidates)
        loose = BlockwiseValidator(spool, max_open_files=100).validate(candidates)
        assert tight.stats.extra["sub_runs"] > loose.stats.extra["sub_runs"]
        assert tight.stats.items_read >= loose.stats.items_read

    def test_budget_validation(self, spool):
        with pytest.raises(ValidatorError, match="at least 2"):
            BlockwiseValidator(spool, max_open_files=1)

    def test_engine_validation(self, spool):
        with pytest.raises(ValidatorError, match="unknown engine"):
            BlockwiseValidator(spool, engine="quantum")


class TestOpenFileAccounting:
    """Sec. 4.2 regression: peak-open-file accounting across merged runs.

    ``IOStats.merge`` used to drop ``open_files`` when folding a sub-run's
    counters, so a consumer merging mid-flight stats would under-report the
    true open-file peak — the very quantity the blockwise budget exists to
    bound.  These tests pin the corrected behaviour at the validator level.
    """

    def test_peak_equals_max_over_subruns(self, spool, candidates):
        budget = 6
        result = BlockwiseValidator(
            spool, max_open_files=budget
        ).validate(candidates)
        # The merged peak is the max over sub-runs: within the budget, but
        # genuinely reflecting concurrent opens (> 1 whenever work happened).
        assert 2 <= result.stats.peak_open_files <= budget
        # Every sub-run closed its cursors; a validator-level merge must not
        # manufacture phantom open files either.
        assert result.stats.files_opened >= result.stats.peak_open_files

    def test_merged_stats_are_settled(self, spool, candidates):
        """After validation no cursor is left open in the merged counters."""
        from repro.storage.cursors import IOStats

        outer = IOStats()
        peaks = []
        for budget in (2, 5):
            sub = IOStats()
            result = BlockwiseValidator(
                spool, max_open_files=budget
            ).validate(candidates)
            sub.items_read = result.stats.items_read
            sub.files_opened = result.stats.files_opened
            sub.peak_open_files = result.stats.peak_open_files
            peaks.append(result.stats.peak_open_files)
            outer.merge(sub)
        assert outer.open_files == 0
        assert outer.peak_open_files == max(peaks)
        assert outer.files_opened > 0


class TestStats:
    def test_counts_aggregate(self, spool, candidates):
        result = BlockwiseValidator(spool, max_open_files=4).validate(candidates)
        assert (
            result.stats.satisfied_count + result.stats.refuted_count
            == len(candidates)
        )
        assert result.stats.items_read > 0
        assert result.stats.extra["dep_block_size"] >= 1
        assert result.stats.extra["ref_block_size"] >= 1

    def test_empty_candidates(self, spool):
        result = BlockwiseValidator(spool, max_open_files=4).validate([])
        assert len(result.decisions) == 0

"""Tests for prefix-tolerant (concatenated-value) IND detection."""

import pytest

from repro.core.candidates import Candidate
from repro.core.concatenated import (
    PrefixedINDFinder,
    detect_common_prefix,
)
from repro.db.schema import AttributeRef
from repro.storage.cursors import MemoryValueCursor
from repro.storage.sorted_sets import SpoolDirectory

DEP = AttributeRef("t", "dep")
REF = AttributeRef("t", "ref")


def prefix_of(values: list[str], max_scan=None) -> str | None:
    return detect_common_prefix(MemoryValueCursor(values), max_scan)


class TestDetectCommonPrefix:
    def test_separator_terminated(self):
        assert prefix_of(["PDB-1abc", "PDB-2xyz"]) == "PDB-"

    def test_no_separator_means_no_prefix(self):
        assert prefix_of(["PDBA1abc", "PDBA2xyz"]) is None

    def test_prefix_cut_at_last_separator(self):
        assert prefix_of(["GO:A:1", "GO:A:2"]) == "GO:A:"

    def test_empty_common_prefix(self):
        assert prefix_of(["abc", "xyz"]) is None

    def test_empty_input(self):
        assert prefix_of([]) is None

    def test_single_value(self):
        # A single value's prefix up to its last separator.
        assert prefix_of(["PDB-1abc"]) == "PDB-"

    def test_scan_limit(self):
        values = ["P-1", "P-2", "X9"]
        assert prefix_of(values, max_scan=2) == "P-"
        assert prefix_of(values) is None

    @pytest.mark.parametrize("sep", list("-_:/| "))
    def test_all_separators(self, sep):
        assert prefix_of([f"AB{sep}1", f"AB{sep}2"]) == f"AB{sep}"


class TestPrefixedINDFinder:
    @pytest.fixture()
    def spool(self, tmp_path) -> SpoolDirectory:
        s = SpoolDirectory.create(tmp_path / "s")
        codes = [f"{i}abc"[:4] for i in range(1, 6)]
        codes = sorted({f"{i}ab{i}" for i in range(1, 6)})
        s.add_values(REF, codes)
        s.add_values(DEP, sorted(f"PDB-{c}" for c in codes))
        s.add_values(AttributeRef("t", "other"), ["zzz"])
        return s

    def test_strip_dependent_prefix(self, spool):
        finder = PrefixedINDFinder(spool)
        hit = finder.check(Candidate(DEP, REF))
        assert hit is not None
        assert hit.prefix == "PDB-"
        assert hit.stripped_side == "dependent"
        assert "strip" in str(hit)

    def test_strip_referenced_prefix(self, spool):
        finder = PrefixedINDFinder(spool)
        hit = finder.check(Candidate(REF, DEP))
        assert hit is not None
        assert hit.stripped_side == "referenced"

    def test_no_match_returns_none(self, spool):
        finder = PrefixedINDFinder(spool)
        assert finder.check(
            Candidate(AttributeRef("t", "other"), REF)
        ) is None

    def test_find_all(self, spool):
        finder = PrefixedINDFinder(spool)
        hits = finder.find_all(
            [
                Candidate(DEP, REF),
                Candidate(AttributeRef("t", "other"), REF),
            ]
        )
        assert len(hits) == 1

    def test_prefix_cache(self, spool):
        finder = PrefixedINDFinder(spool)
        finder.check(Candidate(DEP, REF))
        assert finder._prefix_cache[DEP] == "PDB-"

    def test_partial_prefixed_set_refuted(self, tmp_path):
        # Stripped values must ALL be present; one miss refutes.
        s = SpoolDirectory.create(tmp_path / "s2")
        s.add_values(REF, ["1aaa"])
        s.add_values(DEP, ["PDB-1aaa", "PDB-9zzz"])
        finder = PrefixedINDFinder(s)
        assert finder.check(Candidate(DEP, REF)) is None

    def test_nonconforming_value_beyond_scan_limit(self, tmp_path):
        """Regression: batched lookahead must not choke on unscanned values.

        The prefix is detected from a bounded scan, so a value past the scan
        horizon may lack it.  When the candidate is decided before that
        value is ever consumed, the check must complete normally — the
        batched cursor protocol peeks far ahead but only *consumed* values
        may be prefix-checked.
        """
        s = SpoolDirectory.create(tmp_path / "s3")
        # Prefix "PDB-" detected from the first 3 values; "ZZZ-x" (beyond the
        # scan limit) does not conform.  The candidate is refuted on the very
        # first stripped value ("1aaa" not in REF), long before "ZZZ-x".
        s.add_values(DEP, ["PDB-1aaa", "PDB-2bbb", "PDB-3ccc", "ZZZ-x"])
        s.add_values(REF, ["0zzz"])
        finder = PrefixedINDFinder(s, prefix_scan_limit=3)
        assert finder.check(Candidate(DEP, REF)) is None  # refuted, no crash

    def test_nonconforming_value_that_is_consumed_still_raises(self, tmp_path):
        from repro.errors import ValidatorError

        s = SpoolDirectory.create(tmp_path / "s4")
        s.add_values(DEP, ["PDB-1aaa", "PDB-2bbb", "ZZZ-x"])
        # Both stripped values present, so the scan must consume "ZZZ-x".
        s.add_values(REF, ["1aaa", "2bbb", "3ccc"])
        finder = PrefixedINDFinder(s, prefix_scan_limit=2)
        with pytest.raises(ValidatorError, match="lacks the expected prefix"):
            finder.check(Candidate(DEP, REF))

"""Unit tests for the delta planner's edges and the incremental plumbing.

The stress harness (``tests/test_incremental_stress.py``) proves the
headline byte-exactness property; this module pins the machinery around
it: fallback reasons for unusable priors, the config-compatibility rules,
the session's automatic prior threading, and the shape of the ``delta``
accounting in ``to_dict()``.
"""

from __future__ import annotations

import pytest

from seeded_dbs import build_db

from repro.core.candidates import PretestConfig
from repro.core.runner import DiscoveryConfig, DiscoverySession, discover_inds
from repro.errors import DiscoveryError


def _config(**overrides) -> DiscoveryConfig:
    defaults = dict(
        strategy="merge-single-pass",
        sampling_size=2,
        pretests=PretestConfig(cardinality=True, max_value=False),
        incremental=True,
    )
    defaults.update(overrides)
    return DiscoveryConfig(**defaults)


class TestConfigValidation:
    def test_requires_an_external_strategy(self):
        with pytest.raises(DiscoveryError, match="external"):
            _config(strategy="sql-join").validated()
        with pytest.raises(DiscoveryError, match="external"):
            _config(strategy="reference").validated()

    def test_rejects_transitivity(self):
        with pytest.raises(DiscoveryError, match="transitivity"):
            _config(use_transitivity=True).validated()

    def test_rejects_overlap(self):
        with pytest.raises(DiscoveryError, match="overlap"):
            _config(overlap=True, validation_workers=2).validated()

    def test_external_strategies_validate(self):
        for strategy in ("brute-force", "merge-single-pass", "single-pass"):
            assert _config(strategy=strategy).validated()


class TestFallbackReasons:
    def test_no_prior_runs_full(self):
        result = discover_inds(build_db(), _config())
        assert result.delta == {"mode": "full", "reason": "no-prior"}
        # Even a full-mode first run stamps the carriers: it can seed a chain.
        assert result.prior_fingerprints is not None
        assert result.prior_sampling_refuted is not None
        assert result.prior_config_signature is not None

    def test_database_mismatch_runs_full(self):
        prior = discover_inds(build_db(0), _config())
        other = build_db(1)
        other.name = "somewhere-else"
        result = discover_inds(other, _config(), prior=prior)
        assert result.delta == {"mode": "full", "reason": "database-mismatch"}

    def test_non_incremental_prior_is_incomplete(self):
        db = build_db()
        prior = discover_inds(db, _config(incremental=False))
        assert prior.prior_fingerprints is None
        result = discover_inds(db, _config(), prior=prior)
        assert result.delta == {"mode": "full", "reason": "prior-incomplete"}

    @pytest.mark.parametrize(
        "override",
        [
            {"sampling_size": 3},
            {"sampling_seed": 99},
            {"candidate_mode": "all-pairs"},
            {"pretests": PretestConfig(cardinality=True, max_value=True)},
        ],
    )
    def test_decision_affecting_knob_change_runs_full(self, override):
        db = build_db()
        prior = discover_inds(db, _config())
        result = discover_inds(db, _config(**override), prior=prior)
        assert result.delta == {"mode": "full", "reason": "config-mismatch"}

    def test_strategy_and_workers_do_not_invalidate_the_prior(self):
        """All validators agree, so the signature ignores who validated."""
        db = build_db()
        prior = discover_inds(db, _config(strategy="brute-force"))
        result = discover_inds(
            db,
            _config(strategy="merge-single-pass", validation_workers=2),
            prior=prior,
        )
        assert result.delta["mode"] == "delta"
        assert result.delta["attributes_changed"] == 0


class TestDeltaAccounting:
    def test_unchanged_database_reuses_every_decision(self):
        db = build_db()
        prior = discover_inds(db, _config())
        result = discover_inds(db, _config(), prior=prior)
        assert result.delta == {
            "mode": "delta",
            "attributes_changed": 0,
            "candidates_revalidated": 0,
            "decisions_reused": prior.candidates_after_pretests,
        }
        assert sorted(map(str, result.satisfied)) == sorted(
            map(str, prior.satisfied)
        )
        assert result.sampling_refuted == prior.sampling_refuted

    def test_delta_key_absent_from_non_incremental_dicts(self):
        result = discover_inds(build_db(), _config(incremental=False))
        assert result.delta is None
        assert "delta" not in result.to_dict()

    def test_delta_key_present_and_first_class_when_incremental(self):
        db = build_db()
        prior = discover_inds(db, _config())
        doc = discover_inds(db, _config(), prior=prior).to_dict()
        assert doc["delta"]["mode"] == "delta"

    def test_carriers_are_not_serialised(self):
        db = build_db()
        doc = discover_inds(db, _config()).to_dict()
        for key in (
            "prior_fingerprints",
            "prior_sampling_refuted",
            "prior_config_signature",
        ):
            assert key not in doc


class TestSessionPriorThreading:
    def test_session_threads_the_prior_automatically(self):
        db = build_db()
        with DiscoverySession(_config()) as session:
            first = session.discover(db)
            assert first.delta["mode"] == "full"
            second = session.discover(db)
            assert second.delta["mode"] == "delta"
            assert second.delta["attributes_changed"] == 0

    def test_priors_are_kept_per_database(self):
        db_a = build_db(0)
        db_b = build_db(1)
        db_b.name = "other"
        with DiscoverySession(_config()) as session:
            session.discover(db_a)
            first_b = session.discover(db_b)
            assert first_b.delta == {"mode": "full", "reason": "no-prior"}
            second_a = session.discover(db_a)
            assert second_a.delta["mode"] == "delta"

    def test_explicit_prior_overrides_the_session_memory(self):
        db = build_db()
        external_prior = discover_inds(db, _config())
        with DiscoverySession(_config()) as session:
            result = session.discover(db, prior=external_prior)
            assert result.delta["mode"] == "delta"

    def test_non_incremental_runs_do_not_touch_the_prior_store(self):
        db = build_db()
        with DiscoverySession(_config(incremental=False)) as session:
            session.discover(db)
            result = session.discover(db, _config())
            assert result.delta == {"mode": "full", "reason": "no-prior"}

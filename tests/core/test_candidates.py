"""Tests for candidate generation and the metadata pretests."""

import pytest

from repro.core.candidates import (
    Candidate,
    PretestConfig,
    apply_pretests,
    cardinality_pretest,
    datatype_pretest,
    dependent_attributes,
    generate_all_pairs_candidates,
    generate_unique_ref_candidates,
    max_value_pretest,
    min_value_pretest,
    referenced_attributes,
)
from repro.db import Column, Database, DataType, TableSchema
from repro.db.schema import AttributeRef
from repro.db.stats import collect_column_stats


@pytest.fixture()
def db() -> Database:
    database = Database("cand")
    t = database.create_table(
        TableSchema(
            "t",
            [
                Column("uniq", DataType.INTEGER),     # unique: 1..10
                Column("dup", DataType.INTEGER),      # duplicates
                Column("text", DataType.VARCHAR),     # unique strings
                Column("big", DataType.CLOB),         # LOB: excluded
                Column("void", DataType.VARCHAR),     # all NULL: excluded
            ],
        )
    )
    for i in range(10):
        t.insert(
            {
                "uniq": i + 1,
                "dup": i % 3,
                "text": f"s{i}",
                "big": "lob-value",
                "void": None,
            }
        )
    return database


@pytest.fixture()
def stats(db):
    return collect_column_stats(db)


T = "t"
UNIQ = AttributeRef(T, "uniq")
DUP = AttributeRef(T, "dup")
TEXT = AttributeRef(T, "text")
BIG = AttributeRef(T, "big")
VOID = AttributeRef(T, "void")


class TestAttributeSets:
    def test_dependents_exclude_lob_and_empty(self, stats):
        deps = dependent_attributes(stats)
        assert UNIQ in deps and DUP in deps and TEXT in deps
        assert BIG not in deps
        assert VOID not in deps

    def test_referenced_are_unique_non_lob(self, stats):
        refs = referenced_attributes(stats)
        assert refs == [TEXT, UNIQ]

    def test_referenced_subset_of_dependents(self, stats):
        assert set(referenced_attributes(stats)) <= set(
            dependent_attributes(stats)
        )


class TestGeneration:
    def test_unique_ref_mode(self, stats):
        candidates = generate_unique_ref_candidates(stats)
        # 3 deps x 2 refs - 2 self pairs = 4
        assert len(candidates) == 4
        assert Candidate(DUP, UNIQ) in candidates
        assert Candidate(UNIQ, UNIQ) not in candidates

    def test_all_pairs_mode_counts(self, stats):
        candidates = generate_all_pairs_candidates(stats)
        # 3 usable attributes -> 3 unordered pairs.
        assert len(candidates) == 3

    def test_all_pairs_directs_small_into_large(self, stats):
        candidates = generate_all_pairs_candidates(stats)
        pair = next(
            c for c in candidates if {c.dependent, c.referenced} == {DUP, UNIQ}
        )
        assert pair.dependent == DUP  # 3 distinct vs 10 distinct

    def test_all_pairs_equal_cardinality_one_direction(self, stats):
        candidates = generate_all_pairs_candidates(stats)
        pair = next(
            c for c in candidates if {c.dependent, c.referenced} == {TEXT, UNIQ}
        )
        # Equal cardinality (10 = 10): lexicographically smaller dep wins.
        assert pair.dependent == TEXT


class TestPretests:
    def test_cardinality(self, stats):
        assert cardinality_pretest(Candidate(DUP, UNIQ), stats)
        assert not cardinality_pretest(Candidate(UNIQ, DUP), stats)
        assert cardinality_pretest(Candidate(UNIQ, TEXT), stats)  # equal

    def test_max_value_rendered_order(self, stats):
        # max(dup)="2", max(uniq)="9" rendered: "2" <= "9" passes.
        assert max_value_pretest(Candidate(DUP, UNIQ), stats)
        # max(text)="s9" > max(uniq)="9": fails.
        assert not max_value_pretest(Candidate(TEXT, UNIQ), stats)

    def test_min_value(self, stats):
        # min(dup)="0" < min(uniq)="1": dep has a value below every ref value.
        assert not min_value_pretest(Candidate(DUP, UNIQ), stats)
        assert min_value_pretest(Candidate(UNIQ, DUP), stats)

    def test_datatype(self, stats):
        assert datatype_pretest(Candidate(DUP, UNIQ), stats)
        assert not datatype_pretest(Candidate(DUP, TEXT), stats)

    def test_pretest_soundness_no_false_pruning(self, db, stats):
        """Candidates pruned by cardinality/max-value are provably unsatisfied."""
        from repro.core.reference import ReferenceValidator

        oracle = ReferenceValidator(db)
        candidates = generate_unique_ref_candidates(stats)
        for candidate in candidates:
            if not cardinality_pretest(candidate, stats):
                assert not oracle.validate_one(candidate)
            if not max_value_pretest(candidate, stats):
                assert not oracle.validate_one(candidate)
            if not min_value_pretest(candidate, stats):
                assert not oracle.validate_one(candidate)


class TestApplyPretests:
    def test_report_counts(self, stats):
        candidates = generate_unique_ref_candidates(stats)
        survivors, report = apply_pretests(
            candidates, stats, PretestConfig(cardinality=True, max_value=True)
        )
        assert report.initial == len(candidates)
        assert report.remaining == len(survivors)
        assert (
            report.initial
            - report.removed_by_cardinality
            - report.removed_by_max_value
            == report.remaining
        )
        assert report.removed_total >= 0

    def test_order_of_filters(self, stats):
        # A candidate failing both tests is attributed to cardinality (the
        # paper's phase-1 test comes first).
        candidates = [Candidate(UNIQ, DUP)]
        _, report = apply_pretests(
            candidates, stats, PretestConfig(cardinality=True, max_value=True)
        )
        assert report.removed_by_cardinality == 1
        assert report.removed_by_max_value == 0

    def test_disabled_pretests_pass_everything(self, stats):
        candidates = generate_unique_ref_candidates(stats)
        survivors, report = apply_pretests(
            candidates, stats, PretestConfig(cardinality=False)
        )
        assert survivors == candidates
        assert report.removed_total == 0

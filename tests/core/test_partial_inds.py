"""Tests for partial IND computation (dirty data)."""

import pytest

from repro.core.candidates import Candidate
from repro.core.partial_inds import PartialINDCalculator, count_containment
from repro.db.schema import AttributeRef
from repro.errors import ValidatorError
from repro.storage.cursors import MemoryValueCursor
from repro.storage.sorted_sets import SpoolDirectory

A = AttributeRef("t", "a")
B = AttributeRef("t", "b")


def counts(dep: list[str], ref: list[str]) -> tuple[int, int]:
    return count_containment(MemoryValueCursor(dep), MemoryValueCursor(ref))


class TestCountContainment:
    def test_full_containment(self):
        assert counts(["a", "b"], ["a", "b", "c"]) == (2, 2)

    def test_partial(self):
        assert counts(["a", "b", "x"], ["a", "b", "c"]) == (3, 2)

    def test_no_overlap(self):
        assert counts(["x", "y"], ["a", "b"]) == (2, 0)

    def test_empty_dep(self):
        assert counts([], ["a"]) == (0, 0)

    def test_empty_ref(self):
        assert counts(["a"], []) == (1, 0)

    def test_dep_values_beyond_ref(self):
        assert counts(["a", "z"], ["a", "b"]) == (2, 1)

    def test_interleaved(self):
        assert counts(["b", "d", "f"], ["a", "b", "c", "d", "e"]) == (3, 2)


class TestPartialIND:
    @pytest.fixture()
    def spool(self, tmp_path) -> SpoolDirectory:
        s = SpoolDirectory.create(tmp_path / "s")
        # 9 of 10 dep values exist in ref: strength 0.9 (one dirty value).
        s.add_values(A, sorted([f"{i:02d}" for i in range(9)] + ["zz"]))
        s.add_values(B, [f"{i:02d}" for i in range(20)])
        return s

    def test_strength(self, spool):
        partial = PartialINDCalculator(spool).measure(Candidate(A, B))
        assert partial.dependent_count == 10
        assert partial.contained_count == 9
        assert partial.strength == pytest.approx(0.9)
        assert not partial.is_exact

    def test_exact_ind_strength_one(self, tmp_path):
        s = SpoolDirectory.create(tmp_path / "e")
        s.add_values(A, ["a"])
        s.add_values(B, ["a", "b"])
        partial = PartialINDCalculator(s).measure(Candidate(A, B))
        assert partial.strength == 1.0
        assert partial.is_exact

    def test_trivial_rejected(self, spool):
        with pytest.raises(ValidatorError, match="trivial"):
            PartialINDCalculator(spool).measure(Candidate(A, A))

    def test_measure_all_threshold(self, spool):
        calc = PartialINDCalculator(spool)
        kept, stats = calc.measure_all(
            [Candidate(A, B), Candidate(B, A)], threshold=0.8
        )
        assert len(kept) == 1  # A->B at 0.9; B->A at 10/20=0.5
        assert stats.candidates_tested == 2
        assert stats.satisfied_count == 1
        assert stats.refuted_count == 1
        assert stats.items_read > 0

    def test_measure_all_zero_threshold_keeps_everything(self, spool):
        kept, _ = PartialINDCalculator(spool).measure_all(
            [Candidate(A, B), Candidate(B, A)], threshold=0.0
        )
        assert len(kept) == 2

    def test_invalid_threshold(self, spool):
        with pytest.raises(ValidatorError, match="threshold"):
            PartialINDCalculator(spool).measure_all([], threshold=1.5)

    def test_str_rendering(self, spool):
        partial = PartialINDCalculator(spool).measure(Candidate(A, B))
        assert "0.900" in str(partial)

    def test_strength_of_empty_dep_is_one(self, tmp_path):
        s = SpoolDirectory.create(tmp_path / "v")
        s.add_values(A, [])
        s.add_values(B, ["x"])
        partial = PartialINDCalculator(s).measure(Candidate(A, B))
        assert partial.strength == 1.0

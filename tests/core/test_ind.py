"""Tests for INDs and IND sets (closure operations)."""

from repro.core.ind import IND, INDSet
from repro.db.schema import AttributeRef

A = AttributeRef("t1", "a")
B = AttributeRef("t2", "b")
C = AttributeRef("t3", "c")
D = AttributeRef("t4", "d")


class TestIND:
    def test_trivial(self):
        assert IND(A, A).is_trivial
        assert not IND(A, B).is_trivial

    def test_reversed(self):
        assert IND(A, B).reversed() == IND(B, A)

    def test_str(self):
        assert str(IND(A, B)) == "t1.a [= t2.b"

    def test_ordering_deterministic(self):
        assert sorted([IND(B, A), IND(A, B)]) == [IND(A, B), IND(B, A)]


class TestINDSetBasics:
    def test_add_and_contains(self):
        s = INDSet()
        s.add(IND(A, B))
        assert IND(A, B) in s
        assert IND(B, A) not in s
        assert len(s) == 1

    def test_iteration_sorted(self):
        s = INDSet([IND(B, C), IND(A, B)])
        assert list(s) == [IND(A, B), IND(B, C)]

    def test_set_operations(self):
        s1 = INDSet([IND(A, B), IND(B, C)])
        s2 = INDSet([IND(B, C), IND(C, D)])
        assert len(s1.union(s2)) == 3
        assert list(s1.intersection(s2)) == [IND(B, C)]
        assert list(s1.difference(s2)) == [IND(A, B)]

    def test_equality(self):
        assert INDSet([IND(A, B)]) == INDSet([IND(A, B)])
        assert INDSet([IND(A, B)]) != INDSet([IND(B, A)])

    def test_views(self):
        s = INDSet([IND(A, B), IND(C, B), IND(A, C)])
        assert s.referenced_by(A) == [B, C]
        assert s.dependents_of(B) == [A, C]

    def test_inds_into_table(self):
        s = INDSet([IND(A, B), IND(C, B), IND(B, C)])
        assert s.inds_into_table("t2") == [IND(A, B), IND(C, B)]
        assert s.inds_into_table("ghost") == []

    def test_attributes(self):
        s = INDSet([IND(A, B)])
        assert s.attributes() == {A, B}


class TestClosure:
    def test_chain_closure(self):
        s = INDSet([IND(A, B), IND(B, C)])
        closure = s.transitive_closure()
        assert IND(A, C) in closure
        assert len(closure) == 3

    def test_cycle_closure_excludes_trivial(self):
        s = INDSet([IND(A, B), IND(B, A)])
        closure = s.transitive_closure()
        assert IND(A, A) not in closure
        assert len(closure) == 2

    def test_cycle_closure_includes_trivial_on_request(self):
        s = INDSet([IND(A, B), IND(B, A)])
        closure = s.transitive_closure(include_trivial=True)
        assert IND(A, A) in closure

    def test_long_chain(self):
        s = INDSet([IND(A, B), IND(B, C), IND(C, D)])
        closure = s.transitive_closure()
        assert IND(A, D) in closure
        assert len(closure) == 6

    def test_implies(self):
        s = INDSet([IND(A, B), IND(B, C)])
        assert s.implies(IND(A, C))
        assert s.implies(IND(A, A))  # reflexivity
        assert not s.implies(IND(C, A))


class TestReduction:
    def test_removes_transitive_edge(self):
        s = INDSet([IND(A, B), IND(B, C), IND(A, C)])
        reduced = s.transitive_reduction()
        assert IND(A, C) not in reduced
        assert len(reduced) == 2

    def test_preserves_closure(self):
        s = INDSet([IND(A, B), IND(B, C), IND(A, C), IND(C, D), IND(A, D)])
        reduced = s.transitive_reduction()
        assert reduced.transitive_closure() == s.transitive_closure()

    def test_cycle_kept_as_ring(self):
        s = INDSet([IND(A, B), IND(B, A)])
        reduced = s.transitive_reduction()
        assert reduced.transitive_closure() == s.transitive_closure()

    def test_cycle_plus_tail(self):
        s = INDSet([IND(A, B), IND(B, A), IND(B, C), IND(A, C)])
        reduced = s.transitive_reduction()
        assert reduced.transitive_closure() == s.transitive_closure()
        assert len(reduced) < len(s.transitive_closure())

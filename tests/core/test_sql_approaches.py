"""Tests for the three SQL approach validators (Sec. 2)."""

import pytest

from repro.core.candidates import Candidate
from repro.core.reference import ReferenceValidator
from repro.core.sql_approaches import (
    SqlJoinValidator,
    SqlMinusValidator,
    SqlNotInValidator,
)
from repro.db import Column, Database, DataType, TableSchema
from repro.db.schema import AttributeRef
from repro.errors import ValidatorError


@pytest.fixture()
def db() -> Database:
    database = Database("sqlapp")
    dep = database.create_table(
        TableSchema(
            "dep_t",
            [Column("inc", DataType.INTEGER), Column("out", DataType.INTEGER)],
        )
    )
    ref = database.create_table(
        TableSchema("ref_t", [Column("k", DataType.VARCHAR, unique=True)])
    )
    for i in [1, 2, 2, 3, None]:
        dep.insert({"inc": i, "out": 99 if i is None else i})
    for k in ["1", "2", "3", "4"]:
        ref.insert({"k": k})
    return database


INC = Candidate(AttributeRef("dep_t", "inc"), AttributeRef("ref_t", "k"))
OUT = Candidate(AttributeRef("dep_t", "out"), AttributeRef("ref_t", "k"))


@pytest.mark.parametrize(
    "validator_cls", [SqlJoinValidator, SqlMinusValidator, SqlNotInValidator]
)
class TestAllApproaches:
    def test_satisfied_candidate(self, db, validator_cls):
        result = validator_cls(db).validate([INC])
        assert result.is_satisfied(INC)

    def test_refuted_candidate(self, db, validator_cls):
        result = validator_cls(db).validate([OUT])
        assert not result.is_satisfied(OUT)

    def test_agrees_with_reference(self, db, validator_cls):
        cands = [INC, OUT]
        sql_result = validator_cls(db).validate(cands)
        oracle = ReferenceValidator(db).validate(cands)
        assert sql_result.decisions == oracle.decisions

    def test_statement_is_parseable_sql(self, db, validator_cls):
        from repro.sql.parser import parse

        statement = validator_cls(db).statement_for(INC)
        parse(statement)  # must not raise

    def test_stats_populated(self, db, validator_cls):
        result = validator_cls(db).validate([INC, OUT])
        assert result.stats.sql_statements == 2
        assert result.stats.sql_rows_scanned > 0
        assert result.stats.items_read == 0  # no spool involved

    def test_trivial_rejected(self, db, validator_cls):
        ref = AttributeRef("ref_t", "k")
        with pytest.raises(ValidatorError, match="trivial"):
            validator_cls(db).validate([Candidate(ref, ref)])

    def test_unsafe_identifier_rejected(self, db, validator_cls):
        bad = Candidate(
            AttributeRef("dep_t", "inc"), AttributeRef("ref t", "k")
        )
        with pytest.raises(ValidatorError):
            validator_cls(db).validate_one(bad)


class TestJoinSpecifics:
    def test_requires_unique_referenced(self, db):
        # dep_t.inc is not unique; using it as referenced must be rejected.
        candidate = Candidate(
            AttributeRef("ref_t", "k"), AttributeRef("dep_t", "inc")
        )
        with pytest.raises(ValidatorError, match="unique"):
            SqlJoinValidator(db).validate([candidate])

    def test_null_dep_values_ignored(self, db):
        # inc has one NULL; the join count must compare against non-null rows.
        result = SqlJoinValidator(db).validate([INC])
        assert result.is_satisfied(INC)


class TestNotInNullTrap:
    def test_raw_template_wrong_with_null_in_ref(self):
        """Faithful Figure-4 SQL reports 'satisfied' when ref contains NULL."""
        db = Database("trap")
        dep = db.create_table(TableSchema("d", [Column("v", DataType.INTEGER)]))
        ref = db.create_table(TableSchema("r", [Column("k", DataType.INTEGER)]))
        dep.insert({"v": 1})
        dep.insert({"v": 99})  # 99 is NOT in r: the IND is false
        ref.insert({"k": 1})
        ref.insert({"k": None})
        candidate = Candidate(AttributeRef("d", "v"), AttributeRef("r", "k"))

        oracle = ReferenceValidator(db).validate([candidate])
        assert not oracle.is_satisfied(candidate)

        null_safe = SqlNotInValidator(db, null_safe=True).validate([candidate])
        assert not null_safe.is_satisfied(candidate)

        faithful = SqlNotInValidator(db, null_safe=False).validate([candidate])
        # Three-valued logic swallows the counter-example: wrong answer.
        assert faithful.is_satisfied(candidate)

    def test_null_safe_is_default(self, db):
        assert SqlNotInValidator(db)._null_safe


class TestCrossTypeSemantics:
    def test_integer_dep_included_in_varchar_ref(self, db):
        """TO_CHAR comparison: INTEGER {1,2,3} [= VARCHAR {'1'..'4'}."""
        for validator_cls in (SqlJoinValidator, SqlMinusValidator,
                              SqlNotInValidator):
            result = validator_cls(db).validate([INC])
            assert result.is_satisfied(INC), validator_cls.name

    def test_same_table_candidate(self):
        db = Database("self")
        t = db.create_table(
            TableSchema(
                "t",
                [
                    Column("small", DataType.INTEGER),
                    Column("big", DataType.INTEGER, unique=True),
                ],
            )
        )
        for i in range(6):
            t.insert({"small": i % 3, "big": i})
        candidate = Candidate(AttributeRef("t", "small"), AttributeRef("t", "big"))
        for validator_cls in (SqlJoinValidator, SqlMinusValidator,
                              SqlNotInValidator):
            result = validator_cls(db).validate([candidate])
            assert result.is_satisfied(candidate), validator_cls.name

"""Tests for the end-to-end discovery runner."""

import pytest

from repro.core.candidates import PretestConfig
from repro.core.runner import ALL_STRATEGIES, DiscoveryConfig, discover_inds
from repro.errors import DiscoveryError


class TestConfigValidation:
    def test_unknown_strategy(self):
        with pytest.raises(DiscoveryError, match="unknown strategy"):
            DiscoveryConfig(strategy="magic").validated()

    def test_unknown_candidate_mode(self):
        with pytest.raises(DiscoveryError, match="candidate mode"):
            DiscoveryConfig(candidate_mode="wild").validated()

    def test_transitivity_needs_sequential(self):
        with pytest.raises(DiscoveryError, match="sequential"):
            DiscoveryConfig(
                strategy="single-pass", use_transitivity=True
            ).validated()

    def test_transitivity_with_brute_force_ok(self):
        DiscoveryConfig(strategy="brute-force", use_transitivity=True).validated()

    def test_sampling_needs_external(self):
        with pytest.raises(DiscoveryError, match="sampling"):
            DiscoveryConfig(strategy="sql-join", sampling_size=5).validated()

    def test_negative_sampling(self):
        with pytest.raises(DiscoveryError, match=">= 0"):
            DiscoveryConfig(
                strategy="merge-single-pass", sampling_size=-1
            ).validated()

    def test_all_pairs_join_rejected(self):
        with pytest.raises(DiscoveryError, match="all-pairs"):
            DiscoveryConfig(
                strategy="sql-join", candidate_mode="all-pairs"
            ).validated()

    def test_unknown_spool_format(self):
        with pytest.raises(DiscoveryError, match="spool format"):
            DiscoveryConfig(spool_format="parquet").validated()

    def test_bad_block_size(self):
        with pytest.raises(DiscoveryError, match="spool_block_size"):
            DiscoveryConfig(spool_block_size=0).validated()

    def test_bad_export_workers(self):
        with pytest.raises(DiscoveryError, match="export_workers"):
            DiscoveryConfig(export_workers=0).validated()

    # --- adaptive × cross-flag audit: one test per rejected pair ---

    def test_adaptive_flag_needs_routable_strategy(self):
        with pytest.raises(DiscoveryError, match="adaptive routing covers"):
            DiscoveryConfig(strategy="sql-join", adaptive=True).validated()

    def test_adaptive_flag_pins_base_strategy_ok(self):
        DiscoveryConfig(strategy="brute-force", adaptive=True).validated()
        DiscoveryConfig(strategy="merge-single-pass", adaptive=True).validated()
        DiscoveryConfig(strategy="adaptive").validated()

    def test_adaptive_flag_rejects_transitivity(self):
        with pytest.raises(DiscoveryError, match="order-dependent"):
            DiscoveryConfig(
                strategy="brute-force", adaptive=True, use_transitivity=True
            ).validated()

    def test_adaptive_strategy_rejects_transitivity(self):
        with pytest.raises(DiscoveryError):
            DiscoveryConfig(
                strategy="adaptive", use_transitivity=True
            ).validated()

    def test_range_split_of_one_rejected(self):
        with pytest.raises(DiscoveryError, match=">= 2 partitions"):
            DiscoveryConfig(
                strategy="merge-single-pass",
                range_split=1,
                validation_workers=2,
            ).validated()

    def test_negative_range_split_rejected(self):
        with pytest.raises(DiscoveryError, match=">= 2 partitions"):
            DiscoveryConfig(
                strategy="merge-single-pass",
                range_split=-2,
                validation_workers=2,
            ).validated()

    def test_range_split_needs_merge_or_adaptive_strategy(self):
        with pytest.raises(DiscoveryError, match="merge-single-pass or adaptive"):
            DiscoveryConfig(
                strategy="brute-force", range_split=2, validation_workers=2
            ).validated()

    def test_range_split_needs_parallel_workers(self):
        with pytest.raises(DiscoveryError, match="without parallel workers"):
            DiscoveryConfig(
                strategy="merge-single-pass", range_split=2
            ).validated()

    def test_range_split_with_adaptive_strategy_ok(self):
        DiscoveryConfig(
            strategy="adaptive", range_split=4, validation_workers=2
        ).validated()

    def test_skip_scans_with_adaptive_strategy_ok(self):
        # Both engine families understand skip-scans now (brute-force probes
        # and the merge frontier), so adaptive routing may carry the flag.
        DiscoveryConfig(strategy="adaptive", skip_scans=True).validated()

    def test_skip_scans_with_merge_strategy_ok(self):
        DiscoveryConfig(
            strategy="merge-single-pass", skip_scans=True
        ).validated()

    def test_skip_scans_reject_non_skippable_strategy(self):
        with pytest.raises(DiscoveryError, match="skip-scans only apply"):
            DiscoveryConfig(strategy="single-pass", skip_scans=True).validated()

    def test_skip_scans_with_pinned_adaptive_brute_force_ok(self):
        DiscoveryConfig(
            strategy="brute-force", adaptive=True, skip_scans=True
        ).validated()

    def test_compression_requires_binary_format(self):
        with pytest.raises(DiscoveryError, match="binary spool format"):
            DiscoveryConfig(
                spool_format="text", spool_compression="zlib"
            ).validated()

    def test_unknown_compression_rejected(self):
        with pytest.raises(DiscoveryError, match="unknown spool compression"):
            DiscoveryConfig(spool_compression="lz4").validated()

    def test_mmap_reads_requires_binary_format(self):
        with pytest.raises(DiscoveryError, match="mmap_reads maps binary"):
            DiscoveryConfig(spool_format="text", mmap_reads=True).validated()

    def test_mmap_reads_auto_resolves_by_format(self):
        assert DiscoveryConfig().validated().resolved_mmap_reads is True
        assert (
            DiscoveryConfig(spool_format="text").validated().resolved_mmap_reads
            is False
        )


class TestStrategies:
    def test_all_strategies_agree(self, fk_db):
        results = {}
        for strategy in sorted(ALL_STRATEGIES):
            result = discover_inds(fk_db, DiscoveryConfig(strategy=strategy))
            results[strategy] = {str(i) for i in result.satisfied}
        baseline = results["reference"]
        for strategy, inds in results.items():
            assert inds == baseline, f"{strategy} disagrees"

    def test_fk_found(self, fk_db):
        result = discover_inds(fk_db)
        assert "child.pid [= parent.id" in {str(i) for i in result.satisfied}

    def test_spool_format_and_workers_reach_export(self, fk_db, tmp_path):
        import json

        for fmt in ("text", "binary"):
            config = DiscoveryConfig(
                spool_dir=str(tmp_path / fmt),
                keep_spool=True,
                spool_format=fmt,
                export_workers=2,
            )
            result = discover_inds(fk_db, config)
            assert result.satisfied_count > 0
            doc = json.loads((tmp_path / fmt / "index.json").read_text())
            assert doc["format"] == fmt

    def test_counts_consistent(self, fk_db):
        result = discover_inds(fk_db)
        stats = result.validator_stats
        assert (
            stats.satisfied_count + stats.refuted_count
            == result.candidates_after_pretests
        )
        assert result.raw_candidates >= result.candidates_after_pretests


class TestPhases:
    def test_timings_populated(self, fk_db):
        result = discover_inds(fk_db)
        assert result.timings.profile_seconds >= 0
        assert result.timings.validate_seconds > 0
        assert result.timings.total_seconds >= result.timings.validate_seconds

    def test_export_counts(self, fk_db):
        result = discover_inds(fk_db)
        assert result.export_values_scanned > 0
        assert result.export_values_written > 0

    def test_sql_strategy_skips_export(self, fk_db):
        result = discover_inds(fk_db, DiscoveryConfig(strategy="sql-join"))
        assert result.export_values_scanned == 0
        assert result.timings.export_seconds == 0


class TestSpoolHandling:
    def test_spool_temp_cleaned(self, fk_db, tmp_path):
        import glob
        import tempfile

        before = set(glob.glob(tempfile.gettempdir() + "/repro-spool-*"))
        discover_inds(fk_db)
        after = set(glob.glob(tempfile.gettempdir() + "/repro-spool-*"))
        assert before == after

    def test_keep_spool_in_directory(self, fk_db, tmp_path):
        spool_dir = tmp_path / "keep"
        result = discover_inds(
            fk_db,
            DiscoveryConfig(spool_dir=str(spool_dir), keep_spool=True),
        )
        assert result.spool_path == str(spool_dir)
        from repro.storage.sorted_sets import SpoolDirectory

        spool = SpoolDirectory.open(spool_dir)
        assert len(spool) > 0


class TestOptionsEndToEnd:
    def test_transitivity_same_result(self, fk_db):
        plain = discover_inds(fk_db, DiscoveryConfig(strategy="brute-force"))
        pruned = discover_inds(
            fk_db,
            DiscoveryConfig(strategy="brute-force", use_transitivity=True),
        )
        assert {str(i) for i in plain.satisfied} == {
            str(i) for i in pruned.satisfied
        }

    def test_sql_transitivity(self, fk_db):
        result = discover_inds(
            fk_db, DiscoveryConfig(strategy="sql-join", use_transitivity=True)
        )
        plain = discover_inds(fk_db, DiscoveryConfig(strategy="sql-join"))
        assert {str(i) for i in result.satisfied} == {
            str(i) for i in plain.satisfied
        }
        assert result.validator_stats.sql_statements <= (
            plain.validator_stats.sql_statements
        )

    def test_sampling_same_result(self, fk_db):
        plain = discover_inds(fk_db)
        sampled = discover_inds(
            fk_db,
            DiscoveryConfig(strategy="merge-single-pass", sampling_size=3),
        )
        assert {str(i) for i in plain.satisfied} == {
            str(i) for i in sampled.satisfied
        }

    def test_all_pairs_mode(self, fk_db):
        result = discover_inds(
            fk_db,
            DiscoveryConfig(
                strategy="merge-single-pass", candidate_mode="all-pairs"
            ),
        )
        # all-pairs tests each unordered pair once, directed by cardinality.
        assert result.raw_candidates == 10  # C(5,2) usable attributes
        assert "child.pid [= parent.id" in {str(i) for i in result.satisfied}

    def test_blockwise_strategy(self, fk_db):
        result = discover_inds(
            fk_db,
            DiscoveryConfig(strategy="blockwise", max_open_files=3),
        )
        plain = discover_inds(fk_db)
        assert {str(i) for i in result.satisfied} == {
            str(i) for i in plain.satisfied
        }

    def test_disable_all_pretests(self, fk_db):
        result = discover_inds(
            fk_db,
            DiscoveryConfig(pretests=PretestConfig(cardinality=False)),
        )
        assert result.raw_candidates == result.candidates_after_pretests


class TestResultSerialisation:
    def test_to_dict_roundtrips_to_json(self, fk_db):
        import json

        result = discover_inds(fk_db)
        doc = json.loads(json.dumps(result.to_dict()))
        assert doc["database"] == "fk_db"
        assert doc["satisfied_count"] == len(result.satisfied)
        assert ["child.pid", "parent.id"] in doc["satisfied"]
        assert doc["timings"]["total_seconds"] >= 0

    def test_engine_choice_always_carries_routing_seconds(self, fk_db):
        """Consumers index ``routing_seconds`` without ``.get`` guards.

        Fixed-strategy runs emit the deterministic null choice — same
        bytes every run, so agreement views stay byte-identical — and
        adaptive runs emit the router's real verdict; both carry the key.
        """
        for strategy in ("brute-force", "merge-single-pass", "sql-join"):
            result = discover_inds(fk_db, DiscoveryConfig(strategy=strategy))
            assert result.engine_choice == {
                "strategy": None, "engine": None, "routing_seconds": 0.0,
            }, strategy
        adaptive = discover_inds(
            fk_db,
            DiscoveryConfig(strategy="adaptive", validation_workers=2),
        )
        assert adaptive.engine_choice["engine"] is not None
        assert adaptive.engine_choice["routing_seconds"] > 0.0

"""Tests for Algorithm 1 (brute-force validation)."""

import pytest

from repro.core.brute_force import BruteForceValidator, check_inclusion
from repro.core.candidates import Candidate
from repro.core.stats import ValidatorStats
from repro.db.schema import AttributeRef
from repro.errors import ValidatorError
from repro.storage.cursors import IOStats, MemoryValueCursor
from repro.storage.sorted_sets import SpoolDirectory


def check(dep: list[str], ref: list[str]) -> bool:
    return check_inclusion(MemoryValueCursor(dep), MemoryValueCursor(ref))


class TestAlgorithm1:
    def test_satisfied_subset(self):
        assert check(["b", "d"], ["a", "b", "c", "d"])

    def test_equal_sets(self):
        assert check(["a", "b"], ["a", "b"])

    def test_refuted_value_missing_in_middle(self):
        assert not check(["a", "c"], ["a", "b", "d"])

    def test_refuted_dep_below_ref(self):
        assert not check(["a"], ["b"])

    def test_refuted_ref_exhausted(self):
        assert not check(["a", "z"], ["a", "b"])

    def test_empty_dep_is_vacuously_satisfied(self):
        assert check([], ["a"])
        assert check([], [])

    def test_empty_ref_refutes_nonempty_dep(self):
        assert not check(["a"], [])

    def test_single_matching_value(self):
        assert check(["x"], ["x"])

    def test_dep_larger_than_ref_always_refuted(self):
        assert not check(["a", "b", "c"], ["a", "b"])

    def test_early_stop_reads_nothing_after_refutation(self):
        stats = IOStats()
        dep = MemoryValueCursor(["a", "b", "c"], stats, label="dep")
        ref = MemoryValueCursor(["b", "c", "d"], stats, label="ref")
        assert not check_inclusion(dep, ref)
        # dep read "a", ref read "b" -> stop: 2 items total.
        assert stats.items_read == 2

    def test_comparison_counter(self):
        stats = ValidatorStats()
        check_inclusion(
            MemoryValueCursor(["a", "b"]), MemoryValueCursor(["a", "b"]), stats
        )
        assert stats.comparisons == 2


class TestBruteForceValidator:
    @pytest.fixture()
    def spool(self, tmp_path) -> SpoolDirectory:
        s = SpoolDirectory.create(tmp_path / "s")
        s.add_values(AttributeRef("t", "dep_in"), ["b", "c"])
        s.add_values(AttributeRef("t", "dep_out"), ["b", "x"])
        s.add_values(AttributeRef("t", "ref"), ["a", "b", "c", "d"])
        return s

    def test_validate_decides_all(self, spool):
        candidates = [
            Candidate(AttributeRef("t", "dep_in"), AttributeRef("t", "ref")),
            Candidate(AttributeRef("t", "dep_out"), AttributeRef("t", "ref")),
        ]
        result = BruteForceValidator(spool).validate(candidates)
        assert result.is_satisfied(candidates[0])
        assert not result.is_satisfied(candidates[1])
        assert result.stats.satisfied_count == 1
        assert result.stats.refuted_count == 1
        assert result.stats.candidates_tested == 2

    def test_files_reread_per_candidate(self, spool):
        candidates = [
            Candidate(AttributeRef("t", "dep_in"), AttributeRef("t", "ref")),
            Candidate(AttributeRef("t", "dep_out"), AttributeRef("t", "ref")),
        ]
        result = BruteForceValidator(spool).validate(candidates)
        # Two candidates -> four file opens (the brute-force I/O profile).
        assert result.stats.files_opened == 4
        assert result.stats.peak_open_files == 2

    def test_duplicate_candidates_collapse(self, spool):
        c = Candidate(AttributeRef("t", "dep_in"), AttributeRef("t", "ref"))
        result = BruteForceValidator(spool).validate([c, c])
        assert result.stats.candidates_total == 1

    def test_trivial_candidate_rejected(self, spool):
        ref = AttributeRef("t", "ref")
        with pytest.raises(ValidatorError, match="trivial"):
            BruteForceValidator(spool).validate([Candidate(ref, ref)])

    def test_missing_attribute_raises(self, spool):
        candidate = Candidate(
            AttributeRef("t", "ghost"), AttributeRef("t", "ref")
        )
        with pytest.raises(Exception):
            BruteForceValidator(spool).validate([candidate])

    def test_validate_one(self, spool):
        validator = BruteForceValidator(spool)
        assert validator.validate_one(
            Candidate(AttributeRef("t", "dep_in"), AttributeRef("t", "ref"))
        )
        io = IOStats()
        stats = ValidatorStats()
        assert not validator.validate_one(
            Candidate(AttributeRef("t", "dep_out"), AttributeRef("t", "ref")),
            io=io,
            stats=stats,
        )
        assert io.items_read > 0
        assert stats.comparisons > 0

    def test_empty_candidate_list(self, spool):
        result = BruteForceValidator(spool).validate([])
        assert len(result.satisfied) == 0
        assert result.stats.candidates_total == 0

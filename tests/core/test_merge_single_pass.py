"""Tests for the heap-merge single-pass validator."""

import pytest

from repro.core.brute_force import BruteForceValidator
from repro.core.candidates import Candidate
from repro.core.merge_single_pass import MergeSinglePassValidator
from repro.core.single_pass import SinglePassValidator
from repro.db.schema import AttributeRef
from repro.errors import ValidatorError
from repro.storage.sorted_sets import SpoolDirectory


def build_spool(tmp_path, columns: dict[str, list[str]]) -> SpoolDirectory:
    spool = SpoolDirectory.create(tmp_path / "spool")
    for name, values in columns.items():
        spool.add_values(AttributeRef("t", name), sorted(set(values)))
    return spool


def candidates_between(names: list[str]) -> list[Candidate]:
    refs = [AttributeRef("t", n) for n in names]
    return [Candidate(d, r) for d in refs for r in refs if d != r]


class TestDecisions:
    def test_small_example(self, tmp_path):
        spool = build_spool(
            tmp_path, {"a": ["1", "2"], "b": ["1", "2", "3"], "c": ["3"]}
        )
        result = MergeSinglePassValidator(spool).validate(
            candidates_between(["a", "b", "c"])
        )
        sat = {str(i) for i in result.satisfied}
        assert sat == {"t.a [= t.b", "t.c [= t.b"}

    def test_agrees_with_observer_and_brute_force(self, tmp_path):
        spool = build_spool(
            tmp_path,
            {
                "p": ["1", "3", "5"],
                "q": ["1", "2", "3", "4", "5"],
                "r": ["2", "4"],
                "s": ["1", "5"],
                "t_": [],
            },
        )
        cands = candidates_between(["p", "q", "r", "s", "t_"])
        merge = MergeSinglePassValidator(spool).validate(cands)
        observer = SinglePassValidator(spool).validate(cands)
        brute = BruteForceValidator(spool).validate(cands)
        assert merge.decisions == observer.decisions == brute.decisions

    def test_trivial_rejected(self, tmp_path):
        spool = build_spool(tmp_path, {"a": ["1"]})
        ref = AttributeRef("t", "a")
        with pytest.raises(ValidatorError, match="trivial"):
            MergeSinglePassValidator(spool).validate([Candidate(ref, ref)])

    def test_empty_dep_vacuous(self, tmp_path):
        spool = build_spool(tmp_path, {"e": [], "f": ["a"]})
        c = Candidate(AttributeRef("t", "e"), AttributeRef("t", "f"))
        result = MergeSinglePassValidator(spool).validate([c])
        assert result.is_satisfied(c)
        assert result.stats.vacuous_count == 1

    def test_empty_ref_refuted(self, tmp_path):
        spool = build_spool(tmp_path, {"e": [], "f": ["a"]})
        c = Candidate(AttributeRef("t", "f"), AttributeRef("t", "e"))
        result = MergeSinglePassValidator(spool).validate([c])
        assert not result.is_satisfied(c)


class TestIO:
    def test_single_cursor_per_attribute(self, tmp_path):
        # The merge variant shares one cursor across both roles, so its peak
        # open files equals the attribute count (observer: 2x).
        columns = {f"c{i}": ["v", "w"] for i in range(4)}
        spool = build_spool(tmp_path, columns)
        cands = candidates_between(sorted(columns))
        result = MergeSinglePassValidator(spool).validate(cands)
        assert result.stats.peak_open_files == 4

    def test_each_value_read_once(self, tmp_path):
        columns = {
            "a": [f"v{i}" for i in range(10)],
            "b": [f"v{i}" for i in range(12)],
            "c": [f"v{i}" for i in range(8)],
        }
        spool = build_spool(tmp_path, columns)
        cands = candidates_between(["a", "b", "c"])
        result = MergeSinglePassValidator(spool).validate(cands)
        assert result.stats.items_read <= spool.total_values()

    def test_dead_cursors_close_early(self, tmp_path):
        # "z_only" shares nothing with the others: all its candidates die at
        # the first merge step, so its cursor must not be drained to the end.
        columns = {
            "a": [f"a{i}" for i in range(5)],
            "b": [f"a{i}" for i in range(5)],
            "z_only": [f"z{i}" for i in range(1000)],
        }
        spool = build_spool(tmp_path, columns)
        cands = candidates_between(["a", "b", "z_only"])
        result = MergeSinglePassValidator(spool).validate(cands)
        assert result.stats.items_read < 200

    def test_no_heap_entry_for_undecided_left(self, tmp_path):
        columns = {"a": ["1"], "b": ["1"]}
        spool = build_spool(tmp_path, columns)
        cands = candidates_between(["a", "b"])
        result = MergeSinglePassValidator(spool).validate(cands)
        assert len(result.decisions) == 2
        assert result.stats.satisfied_count == 2


class TestStress:
    def test_random_agreement(self, tmp_path):
        import random

        rng = random.Random(99)
        columns = {}
        pool = [f"{v:03d}" for v in range(50)]
        for i in range(10):
            count = rng.randint(0, 25)
            columns[f"c{i}"] = rng.sample(pool, count)
        spool = build_spool(tmp_path, columns)
        cands = candidates_between(sorted(columns))
        merge = MergeSinglePassValidator(spool).validate(cands)
        brute = BruteForceValidator(spool).validate(cands)
        assert merge.decisions == brute.decisions

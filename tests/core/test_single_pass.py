"""Tests for the subject-observer single-pass validator (Algorithms 2-3)."""

import pytest

from repro.core.brute_force import BruteForceValidator
from repro.core.candidates import Candidate
from repro.core.single_pass import SinglePassValidator
from repro.db.schema import AttributeRef
from repro.errors import ValidatorError
from repro.storage.sorted_sets import SpoolDirectory


def build_spool(tmp_path, columns: dict[str, list[str]]) -> SpoolDirectory:
    spool = SpoolDirectory.create(tmp_path / "spool")
    for name, values in columns.items():
        spool.add_values(AttributeRef("t", name), sorted(set(values)))
    return spool


def candidates_between(names: list[str]) -> list[Candidate]:
    refs = [AttributeRef("t", n) for n in names]
    return [Candidate(d, r) for d in refs for r in refs if d != r]


class TestBasicDecisions:
    def test_all_pairs_small(self, tmp_path):
        spool = build_spool(
            tmp_path,
            {
                "a": ["1", "2"],
                "b": ["1", "2", "3"],
                "c": ["2", "3"],
            },
        )
        result = SinglePassValidator(spool).validate(
            candidates_between(["a", "b", "c"])
        )
        sat = {str(i) for i in result.satisfied}
        assert sat == {"t.a [= t.b", "t.c [= t.b"}
        assert result.stats.refuted_count == 4

    def test_agrees_with_brute_force(self, tmp_path):
        spool = build_spool(
            tmp_path,
            {
                "w": ["m", "n", "o"],
                "x": ["m", "o"],
                "y": ["m", "z"],
                "z": ["a", "m", "n", "o", "z"],
            },
        )
        cands = candidates_between(["w", "x", "y", "z"])
        single = SinglePassValidator(spool).validate(cands)
        brute = BruteForceValidator(spool).validate(cands)
        assert single.decisions == brute.decisions

    def test_equal_value_sets_both_directions(self, tmp_path):
        spool = build_spool(tmp_path, {"a": ["x", "y"], "b": ["x", "y"]})
        result = SinglePassValidator(spool).validate(candidates_between(["a", "b"]))
        assert result.stats.satisfied_count == 2

    def test_disjoint_sets_refuted(self, tmp_path):
        spool = build_spool(tmp_path, {"a": ["1"], "b": ["2"]})
        result = SinglePassValidator(spool).validate(candidates_between(["a", "b"]))
        assert result.stats.satisfied_count == 0


class TestEdgeCases:
    def test_empty_dependent_vacuous(self, tmp_path):
        spool = build_spool(tmp_path, {"empty": [], "full": ["a"]})
        candidate = Candidate(AttributeRef("t", "empty"), AttributeRef("t", "full"))
        result = SinglePassValidator(spool).validate([candidate])
        assert result.is_satisfied(candidate)
        assert result.stats.vacuous_count == 1

    def test_empty_referenced_refuted(self, tmp_path):
        spool = build_spool(tmp_path, {"empty": [], "full": ["a"]})
        candidate = Candidate(AttributeRef("t", "full"), AttributeRef("t", "empty"))
        result = SinglePassValidator(spool).validate([candidate])
        assert not result.is_satisfied(candidate)

    def test_both_empty_vacuous(self, tmp_path):
        spool = build_spool(tmp_path, {"e1": [], "e2": []})
        candidate = Candidate(AttributeRef("t", "e1"), AttributeRef("t", "e2"))
        result = SinglePassValidator(spool).validate([candidate])
        assert result.is_satisfied(candidate)

    def test_trivial_candidate_rejected(self, tmp_path):
        spool = build_spool(tmp_path, {"a": ["1"]})
        ref = AttributeRef("t", "a")
        with pytest.raises(ValidatorError, match="trivial"):
            SinglePassValidator(spool).validate([Candidate(ref, ref)])

    def test_shared_attribute_in_both_roles(self, tmp_path):
        # b is referenced by a and depends on c simultaneously.
        spool = build_spool(
            tmp_path, {"a": ["1"], "b": ["1", "2"], "c": ["1", "2", "3"]}
        )
        cands = [
            Candidate(AttributeRef("t", "a"), AttributeRef("t", "b")),
            Candidate(AttributeRef("t", "b"), AttributeRef("t", "c")),
        ]
        result = SinglePassValidator(spool).validate(cands)
        assert result.stats.satisfied_count == 2

    def test_single_candidate(self, tmp_path):
        spool = build_spool(tmp_path, {"a": ["1", "3"], "b": ["1", "2", "3"]})
        candidate = Candidate(AttributeRef("t", "a"), AttributeRef("t", "b"))
        result = SinglePassValidator(spool).validate([candidate])
        assert result.is_satisfied(candidate)


class TestIOBehaviour:
    def test_each_file_read_at_most_once_per_role(self, tmp_path):
        columns = {f"c{i}": [f"v{j}" for j in range(i + 1)] for i in range(6)}
        spool = build_spool(tmp_path, columns)
        cands = candidates_between(sorted(columns))
        result = SinglePassValidator(spool).validate(cands)
        for ref, reads in result.stats.__dict__.items():
            pass  # reads tracked in IOStats below
        # Upper bound: every attribute read once as dependent + once as
        # referenced = 2x total values.
        assert result.stats.items_read <= 2 * spool.total_values()

    def test_reads_fewer_items_than_brute_force(self, tmp_path):
        columns = {
            f"c{i}": [f"{j:02d}" for j in range(0, 20 + i)] for i in range(8)
        }
        spool = build_spool(tmp_path, columns)
        cands = candidates_between(sorted(columns))
        single = SinglePassValidator(spool).validate(cands)
        brute = BruteForceValidator(spool).validate(cands)
        assert single.decisions == brute.decisions
        assert single.stats.items_read < brute.stats.items_read

    def test_opens_all_files_in_parallel(self, tmp_path):
        columns = {f"c{i}": ["v"] for i in range(5)}
        spool = build_spool(tmp_path, columns)
        cands = candidates_between(sorted(columns))
        result = SinglePassValidator(spool).validate(cands)
        # 5 deps + 5 refs cursors open simultaneously (Sec. 4.2's problem).
        assert result.stats.peak_open_files == 10


class TestProtocolRobustness:
    def test_interleaved_values_no_deadlock(self, tmp_path):
        # Values engineered so every dependent alternately waits on a
        # different referenced object (the Theorem 3.1 scenario).
        spool = build_spool(
            tmp_path,
            {
                "d1": ["a", "d", "g"],
                "d2": ["b", "e", "h"],
                "d3": ["c", "f", "i"],
                "r1": ["a", "e", "i"],
                "r2": ["b", "f", "g"],
                "r3": ["c", "d", "h"],
            },
        )
        deps = ["d1", "d2", "d3"]
        refs = ["r1", "r2", "r3"]
        cands = [
            Candidate(AttributeRef("t", d), AttributeRef("t", r))
            for d in deps
            for r in refs
        ]
        result = SinglePassValidator(spool).validate(cands)
        assert len(result.decisions) == 9

    def test_many_identical_columns(self, tmp_path):
        columns = {f"same{i}": ["p", "q", "r"] for i in range(5)}
        spool = build_spool(tmp_path, columns)
        cands = candidates_between(sorted(columns))
        result = SinglePassValidator(spool).validate(cands)
        assert result.stats.satisfied_count == len(cands)

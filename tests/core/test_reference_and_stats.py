"""Tests for the in-memory oracle, the decision collector, and results."""

import pytest

from repro.core.candidates import Candidate
from repro.core.reference import ReferenceValidator
from repro.core.stats import DecisionCollector, ValidatorStats
from repro.db import Column, Database, DataType, TableSchema
from repro.db.schema import AttributeRef
from repro.errors import ValidatorError
from repro.storage.cursors import IOStats


@pytest.fixture()
def db() -> Database:
    database = Database("ref")
    t = database.create_table(
        TableSchema(
            "t",
            [
                Column("small", DataType.INTEGER),
                Column("big", DataType.INTEGER),
                Column("stringly", DataType.VARCHAR),
                Column("void", DataType.VARCHAR),
            ],
        )
    )
    for i in range(6):
        t.insert(
            {
                "small": i % 3,
                "big": i,
                "stringly": str(i),
                "void": None,
            }
        )
    return database


SMALL = AttributeRef("t", "small")
BIG = AttributeRef("t", "big")
STR = AttributeRef("t", "stringly")
VOID = AttributeRef("t", "void")


class TestReferenceValidator:
    def test_containment(self, db):
        validator = ReferenceValidator(db)
        assert validator.validate_one(Candidate(SMALL, BIG))
        assert not validator.validate_one(Candidate(BIG, SMALL))

    def test_to_char_semantics(self, db):
        # INTEGER {0..5} [= VARCHAR {"0".."5"} under rendered comparison.
        validator = ReferenceValidator(db)
        assert validator.validate_one(Candidate(BIG, STR))
        assert validator.validate_one(Candidate(STR, BIG))

    def test_empty_dep_vacuous(self, db):
        result = ReferenceValidator(db).validate([Candidate(VOID, BIG)])
        assert result.is_satisfied(Candidate(VOID, BIG))
        assert result.stats.vacuous_count == 1

    def test_value_sets_cached(self, db):
        validator = ReferenceValidator(db)
        validator.validate_one(Candidate(SMALL, BIG))
        assert validator._value_set(SMALL) is validator._value_set(SMALL)

    def test_trivial_rejected(self, db):
        with pytest.raises(ValidatorError, match="trivial"):
            ReferenceValidator(db).validate([Candidate(BIG, BIG)])


class TestDecisionCollector:
    def test_records_once(self):
        collector = DecisionCollector([Candidate(SMALL, BIG)], "test")
        collector.record(Candidate(SMALL, BIG), True)
        collector.record(Candidate(SMALL, BIG), False)  # ignored
        assert collector.decisions[Candidate(SMALL, BIG)] is True
        assert collector.stats.satisfied_count == 1
        assert collector.stats.refuted_count == 0

    def test_undecided_tracking(self):
        c1, c2 = Candidate(SMALL, BIG), Candidate(BIG, SMALL)
        collector = DecisionCollector([c1, c2], "test")
        collector.record(c1, True)
        assert collector.undecided == [c2]

    def test_vacuous_not_counted_as_tested(self):
        collector = DecisionCollector([Candidate(VOID, BIG)], "test")
        collector.record(Candidate(VOID, BIG), True, vacuous=True)
        assert collector.stats.vacuous_count == 1
        assert collector.stats.candidates_tested == 0

    def test_dedupe_preserves_order(self):
        c1, c2 = Candidate(SMALL, BIG), Candidate(BIG, SMALL)
        collector = DecisionCollector([c2, c1, c2], "test")
        assert collector.candidates == [c2, c1]

    def test_result_snapshot(self):
        c = Candidate(SMALL, BIG)
        collector = DecisionCollector([c], "named")
        collector.record(c, True)
        result = collector.result()
        assert result.stats.validator == "named"
        assert result.satisfied_inds == [c.as_ind()]


class TestValidatorStats:
    def test_absorb_io(self):
        stats = ValidatorStats()
        io = IOStats()
        io.record_open()
        io.record_read("x")
        io.record_read("x")
        stats.absorb_io(io)
        assert stats.items_read == 2
        assert stats.files_opened == 1
        assert stats.peak_open_files == 1

    def test_absorb_keeps_peak_maximum(self):
        stats = ValidatorStats(peak_open_files=9)
        io = IOStats()
        io.record_open()
        stats.absorb_io(io)
        assert stats.peak_open_files == 9

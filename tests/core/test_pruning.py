"""Tests for transitivity pruning and the sampling pretest."""

import pytest

from repro.core.candidates import Candidate
from repro.core.pruning import SamplingPretest, TransitivityPruner
from repro.db.schema import AttributeRef
from repro.storage.cursors import IOStats
from repro.storage.sorted_sets import SpoolDirectory

A = AttributeRef("t", "a")
B = AttributeRef("t", "b")
C = AttributeRef("t", "c")
D = AttributeRef("t", "d")


class TestTransitivitySatisfied:
    def test_direct_chain(self):
        pruner = TransitivityPruner()
        pruner.record(Candidate(A, B), True)
        pruner.record(Candidate(B, C), True)
        assert pruner.infer(Candidate(A, C)) is True
        assert pruner.inferred_satisfied == 1

    def test_long_chain(self):
        pruner = TransitivityPruner()
        pruner.record(Candidate(A, B), True)
        pruner.record(Candidate(B, C), True)
        pruner.record(Candidate(C, D), True)
        assert pruner.infer(Candidate(A, D)) is True

    def test_no_inference_without_path(self):
        pruner = TransitivityPruner()
        pruner.record(Candidate(A, B), True)
        assert pruner.infer(Candidate(B, A)) is None

    def test_edges_added_out_of_order(self):
        pruner = TransitivityPruner()
        pruner.record(Candidate(B, C), True)
        pruner.record(Candidate(A, B), True)  # closes the chain afterwards
        assert pruner.infer(Candidate(A, C)) is True


class TestTransitivityRefuted:
    def test_refuted_via_satisfied_prefix(self):
        # A [= B satisfied, A [= C refuted => B [= C must be refuted.
        pruner = TransitivityPruner()
        pruner.record(Candidate(A, B), True)
        pruner.record(Candidate(A, C), False)
        assert pruner.infer(Candidate(B, C)) is False
        assert pruner.inferred_refuted == 1

    def test_refuted_via_satisfied_suffix(self):
        # B [= C satisfied, A [= C refuted => A [= B must be refuted.
        pruner = TransitivityPruner()
        pruner.record(Candidate(B, C), True)
        pruner.record(Candidate(A, C), False)
        assert pruner.infer(Candidate(A, B)) is False

    def test_refuted_via_both_sides(self):
        # X [= D sat, R [= Y sat, X [= Y refuted => D [= R refuted.
        x, y = AttributeRef("t", "x"), AttributeRef("t", "y")
        pruner = TransitivityPruner()
        pruner.record(Candidate(x, D), True)
        pruner.record(Candidate(C, y), True)
        pruner.record(Candidate(x, y), False)
        assert pruner.infer(Candidate(D, C)) is False

    def test_no_false_refutation(self):
        pruner = TransitivityPruner()
        pruner.record(Candidate(A, B), True)
        pruner.record(Candidate(C, D), False)
        assert pruner.infer(Candidate(A, D)) is None

    def test_known_decisions_replayed(self):
        pruner = TransitivityPruner()
        pruner.record(Candidate(A, B), True)
        pruner.record(Candidate(C, D), False)
        assert pruner.infer(Candidate(A, B)) is True
        assert pruner.infer(Candidate(C, D)) is False


class TestTransitivitySoundness:
    def test_against_oracle_on_random_sets(self):
        """Every inference must match ground truth on random set systems."""
        import random

        rng = random.Random(17)
        for trial in range(30):
            attrs = [AttributeRef("t", f"c{i}") for i in range(5)]
            sets = {
                ref: frozenset(rng.sample(range(8), rng.randint(1, 6)))
                for ref in attrs
            }
            pruner = TransitivityPruner()
            candidates = [
                Candidate(d, r) for d in attrs for r in attrs if d != r
            ]
            rng.shuffle(candidates)
            for candidate in candidates:
                truth = sets[candidate.dependent] <= sets[candidate.referenced]
                inferred = pruner.infer(candidate)
                if inferred is not None:
                    assert inferred == truth, (
                        f"trial {trial}: wrong inference for {candidate}"
                    )
                pruner.record(candidate, truth)


class TestSamplingPretest:
    @pytest.fixture()
    def spool(self, tmp_path) -> SpoolDirectory:
        s = SpoolDirectory.create(tmp_path / "s")
        s.add_values(A, [f"{i:03d}" for i in range(100)])
        s.add_values(B, [f"{i:03d}" for i in range(150)])  # superset of A
        s.add_values(C, [f"x{i:02d}" for i in range(50)])  # disjoint
        return s

    def test_true_ind_always_passes(self, spool):
        pretest = SamplingPretest(spool, sample_size=10)
        assert pretest.pretest(Candidate(A, B))
        assert pretest.passed == 1

    def test_disjoint_refuted(self, spool):
        pretest = SamplingPretest(spool, sample_size=5)
        assert not pretest.pretest(Candidate(A, C))
        assert pretest.refuted == 1

    def test_sample_cached_per_attribute(self, spool):
        pretest = SamplingPretest(spool, sample_size=5)
        first = pretest.sample(A)
        second = pretest.sample(A)
        assert first is second

    def test_sample_is_sorted_subset(self, spool):
        pretest = SamplingPretest(spool, sample_size=7, seed=3)
        sample = pretest.sample(A)
        assert sample == sorted(sample)
        assert len(sample) == 7
        full = set(spool.get(A).values())
        assert set(sample) <= full

    def test_sample_smaller_than_set(self, spool):
        pretest = SamplingPretest(spool, sample_size=1000)
        assert len(pretest.sample(C)) == 50

    def test_deterministic_given_seed(self, spool):
        s1 = SamplingPretest(spool, sample_size=5, seed=42).sample(A)
        s2 = SamplingPretest(spool, sample_size=5, seed=42).sample(A)
        assert s1 == s2

    def test_invalid_sample_size(self, spool):
        with pytest.raises(ValueError):
            SamplingPretest(spool, sample_size=0)

    def test_io_counted(self, spool):
        pretest = SamplingPretest(spool, sample_size=5)
        io = IOStats()
        pretest.pretest(Candidate(A, C), io)
        assert io.items_read > 0

    def test_never_refutes_true_ind(self, spool):
        """Soundness: a satisfied IND can never be sample-refuted."""
        for seed in range(10):
            pretest = SamplingPretest(spool, sample_size=3, seed=seed)
            assert pretest.pretest(Candidate(A, B)), f"seed={seed}"
